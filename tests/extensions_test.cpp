// Extensions beyond the paper's core protocol:
//  - recomputation checkpointing for read-only state (paper Section 7
//    future work): checkpoints store a CRC instead of the bytes;
//  - multiple successive stopping failures in one job;
//  - pending non-blocking requests crossing a checkpoint (paper Section
//    5.2 transient-object reinitialization rules);
//  - disk-backed stable storage end to end;
//  - error paths: recovery refused without application state, misuse of
//    the registration API.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>

#include "apps/cg.hpp"
#include "core/job.hpp"

namespace c3::core {
namespace {

struct Sink {
  std::mutex mu;
  std::vector<long long> values;
  std::vector<ProcessStats> stats;
  void put(int rank, long long v, const ProcessStats& s) {
    std::lock_guard lock(mu);
    if (values.size() <= static_cast<std::size_t>(rank)) {
      values.resize(static_cast<std::size_t>(rank) + 1);
      stats.resize(static_cast<std::size_t>(rank) + 1);
    }
    values[static_cast<std::size_t>(rank)] = v;
    stats[static_cast<std::size_t>(rank)] = s;
  }
};

// ------------------------------------------- recomputation checkpointing

TEST(ReadonlyState, CheckpointsShrinkByTheReadonlyBytes) {
  auto run = [](bool readonly) {
    auto storage = std::make_shared<util::MemoryStorage>();
    JobConfig cfg;
    cfg.ranks = 2;
    cfg.policy = CheckpointPolicy::every(1);
    cfg.policy.max_checkpoints = 1;
    cfg.storage = storage;
    Job job(cfg);
    job.run([&](Process& p) {
      apps::CgConfig app;
      app.n = 64;
      app.iterations = 4;
      app.readonly_matrix = readonly;
      apps::run_cg(p, app);
    });
    return storage->bytes_written();
  };
  const auto full = run(false);
  const auto slim = run(true);
  // The 64x64 matrix (32KB split over 2 ranks = 16KB each) dominates.
  EXPECT_LT(slim, full / 2)
      << "read-only registration failed to shrink the checkpoint";
}

TEST(ReadonlyState, RecoveryVerifiesRecomputedContents) {
  // CG with a read-only matrix must survive a failure: the recovery run
  // regenerates the matrix in its prologue and the CRC check passes.
  auto run = [](std::optional<net::FailureSpec> failure) {
    std::mutex mu;
    apps::CgResult root;
    JobConfig cfg;
    cfg.ranks = 3;
    cfg.policy = CheckpointPolicy::every(3);
    cfg.failure = failure;
    Job job(cfg);
    job.run([&](Process& p) {
      apps::CgConfig app;
      app.n = 48;
      app.iterations = 20;
      app.readonly_matrix = true;
      auto r = apps::run_cg(p, app);
      if (p.rank() == 0) {
        std::lock_guard lock(mu);
        root = r;
      }
    });
    return root;
  };
  const auto clean = run(std::nullopt);
  const auto recovered =
      run(net::FailureSpec{.victim_rank = 1, .trigger_events = 40});
  EXPECT_EQ(clean.checksum, recovered.checksum);
}

TEST(ReadonlyState, CorruptedRecomputationDetected) {
  // An app that claims state is read-only but recomputes it differently on
  // restart must be caught by the CRC validation.
  auto counter = std::make_shared<std::atomic<int>>(0);
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.policy = CheckpointPolicy::every(1);
  // Late trigger: a checkpoint must have committed, or the job restarts
  // from scratch and never reaches the recovery-time CRC validation.
  cfg.failure = net::FailureSpec{.victim_rank = 0, .trigger_events = 20};
  Job job(cfg);
  EXPECT_THROW(
      job.run([&](Process& p) {
        // "Read-only" data that differs per execution: execution counter.
        int not_actually_readonly = counter->fetch_add(1);
        int iter = 0;
        p.register_readonly_state("bogus", &not_actually_readonly,
                                  sizeof(int));
        p.register_value("iter", iter);
        p.complete_registration();
        while (iter < 8) {
          p.send_value(iter, (p.rank() + 1) % 2, 0);
          (void)p.recv_value<int>((p.rank() + 1) % 2, 0);
          ++iter;
          p.potential_checkpoint();
        }
      }),
      util::CorruptionError);
}

// ------------------------------------------------------ multiple failures

TEST(MultiFailure, TwoFailuresTwoRecoveries) {
  auto run = [](bool with_failures) {
    auto sink = std::make_shared<Sink>();
    JobConfig cfg;
    cfg.ranks = 3;
    cfg.policy = CheckpointPolicy::every(2);
    if (with_failures) {
      cfg.failure = net::FailureSpec{.victim_rank = 1, .trigger_events = 14};
      cfg.extra_failures.push_back(
          net::FailureSpec{.victim_rank = 2, .trigger_events = 40});
    }
    Job job(cfg);
    auto report = job.run([&](Process& p) {
      long long acc = p.rank() + 1;
      int iter = 0;
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      const int right = (p.rank() + 1) % p.nranks();
      const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
      while (iter < 12) {
        p.send_value(acc, right, 0);
        acc = acc * 3 + p.recv_value<long long>(left, 0);
        ++iter;
        p.potential_checkpoint();
      }
      sink->put(p.rank(), acc, p.stats());
    });
    if (with_failures) {
      EXPECT_EQ(report.failures, 2) << "both failures must fire";
      EXPECT_GE(report.executions, 3);
    }
    return sink->values;
  };
  const auto clean = run(false);
  const auto recovered = run(true);
  EXPECT_EQ(clean, recovered);
}

// --------------------------- pending requests across a checkpoint (S5.2)

TEST(PendingRequests, IrecvCrossingCheckpointReinitializes) {
  // Rank 0 posts an irecv into a heap-arena buffer and only waits for it in
  // the *next* iteration, so checkpoints routinely capture a pending (or
  // complete-but-unwaited) request. The pseudo-handle is a plain integer and
  // is itself registered state -- exactly why Section 5.2 introduces
  // pseudo-handles. Failures at several points force each reinitialization
  // rule: complete-at-checkpoint, matched-late-in-log, and re-issue-live.
  auto run = [](std::optional<net::FailureSpec> failure) {
    auto sink = std::make_shared<Sink>();
    JobConfig cfg;
    cfg.ranks = 2;
    cfg.policy = CheckpointPolicy::every(2);
    cfg.heap_capacity = 1 << 16;
    cfg.failure = failure;
    Job job(cfg);
    job.run([&](Process& p) {
      long long acc = 0;
      int iter = 0;
      RequestId pending = kNullRequest;
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.register_value("pending", pending);
      p.complete_registration();
      if (p.rank() == 0) {
        // Arena-backed receive buffer: same virtual address after recovery.
        auto* buf = static_cast<long long*>(
            p.restored() ? p.heap().base()
                         : p.heap().alloc(sizeof(long long)));
        // 9 posts for rank 1's 9 sends: the protocol's liveness depends on
        // the paper's assumption that the application eventually receives
        // every message sent to it (an unreceived message would keep the
        // final checkpoint's late-message collection incomplete forever).
        while (iter < 9) {
          if (pending != kNullRequest) {
            p.wait(pending);
            acc = acc * 7 + *buf;
          }
          pending = p.irecv(
              {reinterpret_cast<std::byte*>(buf), sizeof(long long)}, 1, 3);
          ++iter;
          p.potential_checkpoint();  // `pending` may be incomplete here
        }
        p.wait(pending);
        acc = acc * 7 + *buf;
      } else {
        while (iter < 9) {
          p.send_value(static_cast<long long>(iter * 11 + 5), 0, 3);
          ++iter;
          p.potential_checkpoint();
        }
      }
      sink->put(p.rank(), acc, p.stats());
    });
    return sink->values;
  };
  const auto clean = run(std::nullopt);
  for (std::uint64_t trigger : {9ull, 13ull, 17ull, 21ull}) {
    const auto recovered = run(
        net::FailureSpec{.victim_rank = 1, .trigger_events = trigger});
    EXPECT_EQ(clean, recovered) << "trigger " << trigger;
  }
}

TEST(PendingRequests, NonArenaBufferAcrossCheckpointRejected) {
  // The rejection only fires while the receive is still *pending* at
  // checkpoint time; if rank 1's message slips in first, the request
  // completes and the checkpoint legally succeeds. Retry until the
  // pending-across-checkpoint ordering arises.
  bool rejected = false;
  for (int attempt = 0; attempt < 25 && !rejected; ++attempt) {
    JobConfig cfg;
    cfg.ranks = 2;
    cfg.policy = CheckpointPolicy::every(1);
    Job job(cfg);
    try {
      job.run([&](Process& p) {
        p.complete_registration();
        long long stack_buf = 0;  // NOT in the heap arena
        if (p.rank() == 0) {
          RequestId req = p.irecv(
              {reinterpret_cast<std::byte*>(&stack_buf), sizeof(stack_buf)},
              1, 0);
          p.potential_checkpoint();  // must refuse to serialize this request
          p.wait(req);
        } else {
          p.potential_checkpoint();
          p.send_value(1LL, 0, 0);
        }
      });
    } catch (const util::UsageError&) {
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected)
      << "the receive never stayed pending across the checkpoint";
}

// ------------------------------------------------------------ disk-backed

TEST(DiskBacked, RecoveryThroughRealFiles) {
  const auto dir =
      std::filesystem::temp_directory_path() / "c3_disk_recovery_test";
  std::filesystem::remove_all(dir);
  auto run = [&](std::optional<net::FailureSpec> failure) {
    auto sink = std::make_shared<Sink>();
    JobConfig cfg;
    cfg.ranks = 2;
    cfg.policy = CheckpointPolicy::every(2);
    cfg.failure = failure;
    cfg.storage = std::make_shared<util::DiskStorage>(dir);
    Job job(cfg);
    job.run([&](Process& p) {
      long long acc = 0;
      int iter = 0;
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      while (iter < 8) {
        p.send_value(acc + iter, (p.rank() + 1) % 2, 0);
        acc += p.recv_value<long long>((p.rank() + 1) % 2, 0);
        ++iter;
        p.potential_checkpoint();
      }
      sink->put(p.rank(), acc, p.stats());
    });
    return sink->values;
  };
  const auto clean = run(std::nullopt);
  std::filesystem::remove_all(dir);
  const auto recovered =
      run(net::FailureSpec{.victim_rank = 0, .trigger_events = 18});
  EXPECT_EQ(clean, recovered);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ error paths

TEST(Errors, NoAppStateRecoveryRefused) {
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.level = InstrumentLevel::kNoAppState;
  cfg.policy = CheckpointPolicy::every(1);
  cfg.failure = net::FailureSpec{.victim_rank = 0, .trigger_events = 20};
  Job job(cfg);
  EXPECT_THROW(job.run([&](Process& p) {
                 p.complete_registration();
                 for (int i = 0; i < 8; ++i) {
                   p.send_value(i, (p.rank() + 1) % 2, 0);
                   (void)p.recv_value<int>((p.rank() + 1) % 2, 0);
                   p.potential_checkpoint();
                 }
               }),
               util::UsageError)
      << "recovery without application state must be refused loudly";
}

TEST(Errors, RegisterAfterCompleteRejected) {
  JobConfig cfg;
  cfg.ranks = 1;
  Job job(cfg);
  EXPECT_THROW(job.run([&](Process& p) {
                 int x = 0;
                 p.complete_registration();
                 p.register_value("late", x);
               }),
               util::UsageError);
}

TEST(Errors, CommFreeWithPendingRecvRejected) {
  // Receives borrow the communicator object; freeing it under a pending
  // receive must fail loudly instead of leaving a dangling reference.
  JobConfig cfg;
  cfg.ranks = 2;
  Job job(cfg);
  EXPECT_THROW(job.run([&](Process& p) {
                 p.complete_registration();
                 const CommHandle dup = p.comm_dup(kWorldComm);
                 std::byte buf[8];
                 const RequestId r =
                     p.irecv(buf, (p.rank() + 1) % 2, /*tag=*/5, dup);
                 p.comm_free(dup);  // throws: receive still pending
                 (void)r;
               }),
               util::UsageError);
}

TEST(Errors, DuplicateRegistrationRejected) {
  JobConfig cfg;
  cfg.ranks = 1;
  Job job(cfg);
  EXPECT_THROW(job.run([&](Process& p) {
                 int x = 0, y = 0;
                 p.register_value("name", x);
                 p.register_value("name", y);
               }),
               util::UsageError);
}

TEST(Errors, WaitOnUnknownRequestRejected) {
  JobConfig cfg;
  cfg.ranks = 1;
  Job job(cfg);
  EXPECT_THROW(job.run([&](Process& p) {
                 p.complete_registration();
                 (void)p.wait(999);
               }),
               util::UsageError);
}

}  // namespace
}  // namespace c3::core
