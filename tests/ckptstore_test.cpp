// The checkpoint storage pipeline: codec framing, chunked delta encoding,
// retention across drop_epoch, the async writer barrier, and the
// kill-mid-pipeline guarantee that an uncommitted epoch is never the
// recovery point.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <random>

#include "ckptstore/codec.hpp"
#include "ckptstore/delta.hpp"
#include "ckptstore/store.hpp"
#include "statesave/checkpoint.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

#include "ckpt_test_util.hpp"

namespace c3::ckptstore {
namespace {

using util::BlobKey;
using util::Bytes;
using testutil::random_bytes;

Bytes compressible_bytes(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::byte>("abcabcab"[i % 8]);
  }
  return b;
}

// ------------------------------------------------------------------ codec

TEST(Codec, RoundTripCompressible) {
  const Bytes raw = compressible_bytes(4096);
  Bytes comp;
  const CodecId used = codec_encode(CodecId::kLz, raw, comp);
  EXPECT_EQ(used, CodecId::kLz);
  EXPECT_LT(comp.size(), raw.size() / 4) << "periodic data must compress well";
  Bytes out;
  codec_decode(used, comp, raw.size(), out);
  EXPECT_EQ(out, raw);
}

TEST(Codec, IncompressibleFallsBackToVerbatim) {
  const Bytes raw = random_bytes(4096, 7);
  Bytes comp;
  const CodecId used = codec_encode(CodecId::kLz, raw, comp);
  EXPECT_EQ(used, CodecId::kNone) << "random bytes must not inflate";
  EXPECT_EQ(comp, raw);
  Bytes out;
  codec_decode(used, comp, raw.size(), out);
  EXPECT_EQ(out, raw);
}

TEST(Codec, RoundTripAllSizes) {
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 63u, 64u, 4095u, 4096u,
                              4097u, 70000u}) {
    const Bytes raw = compressible_bytes(n);
    Bytes comp;
    const CodecId used = codec_encode(CodecId::kLz, raw, comp);
    Bytes out;
    codec_decode(used, comp, n, out);
    EXPECT_EQ(out, raw) << "size " << n;
  }
}

TEST(Codec, CorruptStreamDetected) {
  const Bytes raw = compressible_bytes(1024);
  Bytes comp;
  ASSERT_EQ(codec_encode(CodecId::kLz, raw, comp), CodecId::kLz);
  // Truncation must never read past the stream or produce the wrong size.
  Bytes out;
  EXPECT_THROW(codec_decode(CodecId::kLz,
                            std::span(comp).first(comp.size() - 3), raw.size(),
                            out),
               util::CorruptionError);
}

TEST(Codec, OverlappingMatchRuns) {
  // 'aaaa...' forces offset-1 matches longer than the offset (RLE-style).
  Bytes raw(512, std::byte{'a'});
  Bytes comp;
  ASSERT_EQ(codec_encode(CodecId::kLz, raw, comp), CodecId::kLz);
  EXPECT_LT(comp.size(), 32u);
  Bytes out;
  codec_decode(CodecId::kLz, comp, raw.size(), out);
  EXPECT_EQ(out, raw);
}

// ------------------------------------------------------------ chunk math

TEST(ChunkMath, CountsAndLengths) {
  EXPECT_EQ(chunk_count(0, 4096), 0u);
  EXPECT_EQ(chunk_count(1, 4096), 1u);
  EXPECT_EQ(chunk_count(4096, 4096), 1u);
  EXPECT_EQ(chunk_count(4097, 4096), 2u);
  EXPECT_EQ(chunk_len(4097, 4096, 0), 4096u);
  EXPECT_EQ(chunk_len(4097, 4096, 1), 1u);
}

// ------------------------------------------------------------- the store

StoreOptions sync_opts() {
  StoreOptions o;
  o.async = false;
  return o;
}

/// A v1 checkpoint container with a large mostly-stable section and a small
/// churning one -- the shape of a real local checkpoint. The stable bytes
/// are pseudo-random so compression cannot mask what delta encoding saves.
Bytes make_state_blob(int epoch, std::size_t heap_bytes,
                      std::size_t dirty_prefix) {
  statesave::CheckpointBuilder b;
  Bytes heap = random_bytes(heap_bytes, 42);
  for (std::size_t i = 0; i < std::min(dirty_prefix, heap.size()); ++i) {
    heap[i] = static_cast<std::byte>(epoch * 31 + static_cast<int>(i));
  }
  b.add_section("heap", std::move(heap));
  util::Writer w;
  w.put<std::int32_t>(epoch);
  b.add_section("protocol", w.take());
  return b.finish();
}

TEST(CheckpointStore, RoundTripsExactBytesAcrossEpochs) {
  auto inner = std::make_shared<util::MemoryStorage>();
  CheckpointStore store(inner, sync_opts());
  for (int epoch = 1; epoch <= 4; ++epoch) {
    for (int rank = 0; rank < 2; ++rank) {
      const Bytes blob = make_state_blob(epoch, 64 * 1024, 512);
      store.put({epoch, rank, "state"}, blob);
      auto back = store.get({epoch, rank, "state"});
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, blob) << "epoch " << epoch << " rank " << rank;
    }
    store.commit(epoch);
  }
  // Earlier epochs stay readable through the delta chain.
  auto old_back = store.get({2, 0, "state"});
  ASSERT_TRUE(old_back.has_value());
  EXPECT_EQ(*old_back, make_state_blob(2, 64 * 1024, 512));
}

TEST(CheckpointStore, DeltaShrinksStableState) {
  auto inner = std::make_shared<util::MemoryStorage>();
  CheckpointStore store(inner, sync_opts());
  const std::size_t heap = 256 * 1024;
  store.put({1, 0, "state"}, make_state_blob(1, heap, 4096));
  store.commit(1);
  const auto after_first = inner->bytes_written();
  store.put({2, 0, "state"}, make_state_blob(2, heap, 4096));
  store.commit(2);
  const auto second = inner->bytes_written() - after_first;
  // Only the 4 KiB dirty prefix plus the protocol section changed; the
  // second epoch must be a small fraction of the first.
  EXPECT_LT(second, after_first / 8)
      << "delta encoding failed to skip stable chunks";
  store.put({3, 0, "state"}, make_state_blob(3, heap, 4096));
  store.commit(3);
  const auto stats = store.storage_stats();
  EXPECT_GT(stats.ref_chunks, 0u);
  // Cumulative over 3 epochs: 1 full + 2 delta -> most chunks were refs.
  EXPECT_GT(stats.delta_hit_rate(), 0.5);
  EXPECT_LT(stats.stored_bytes, stats.raw_bytes);
  // And the delta-chain epoch still reconstructs bit-exactly.
  auto back = store.get({3, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, make_state_blob(3, heap, 4096));
}

TEST(CheckpointStore, NonContainerBlobsChunkAsAWhole) {
  auto inner = std::make_shared<util::MemoryStorage>();
  CheckpointStore store(inner, sync_opts());
  const Bytes log = random_bytes(40000, 3);
  store.put({1, 0, "log"}, log);
  auto back = store.get({1, 0, "log"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, log);
}

TEST(CheckpointStore, ForeignBlobsPassThrough) {
  // Blobs written before the pipeline existed (plain v1 or arbitrary
  // bytes) must read back untouched.
  auto inner = std::make_shared<util::MemoryStorage>();
  const Bytes old = random_bytes(1000, 9);
  inner->put({1, 0, "state"}, old);
  CheckpointStore store(inner, sync_opts());
  auto back = store.get({1, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, old);
}

TEST(CheckpointStore, SelfContainedEpochReadableByCheckpointView) {
  // The first epoch has no prior state, so every chunk is inline: the
  // stored v2 container must parse directly with CheckpointView.
  auto inner = std::make_shared<util::MemoryStorage>();
  CheckpointStore store(inner, sync_opts());
  const Bytes blob = make_state_blob(1, 8192, 0);
  store.put({1, 0, "state"}, blob);
  const auto stored = inner->get({1, 0, "state"});
  ASSERT_TRUE(stored.has_value());
  EXPECT_NE(*stored, blob) << "the stored form must be the v2 container";
  statesave::CheckpointView direct(*stored);
  statesave::CheckpointView original(blob);
  ASSERT_TRUE(direct.section("heap").has_value());
  const auto a = *direct.section("heap");
  const auto b = *original.section("heap");
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
}

TEST(CheckpointStore, DeltaReferenceRejectedByPlainView) {
  auto inner = std::make_shared<util::MemoryStorage>();
  CheckpointStore store(inner, sync_opts());
  store.put({1, 0, "state"}, make_state_blob(1, 8192, 0));
  store.put({2, 0, "state"}, make_state_blob(2, 8192, 0));
  const auto stored = inner->get({2, 0, "state"});
  ASSERT_TRUE(stored.has_value());
  EXPECT_THROW(statesave::CheckpointView{*stored}, util::CorruptionError)
      << "a delta blob must demand store-side resolution, not parse quietly";
}

TEST(CheckpointStore, DropEpochDefersWhileReferenced) {
  auto inner = std::make_shared<util::MemoryStorage>();
  StoreOptions o = sync_opts();
  o.full_interval = 2;  // epoch N may only reference N-1
  CheckpointStore store(inner, o);
  const std::size_t heap = 64 * 1024;

  store.put({1, 0, "state"}, make_state_blob(1, heap, 256));
  store.commit(1);
  store.put({2, 0, "state"}, make_state_blob(2, heap, 256));
  store.commit(2);
  // Epoch 2's manifest references chunks homed in epoch 1: the protocol's
  // drop of the superseded epoch must be deferred, not break the chain.
  store.drop_epoch(1);
  ASSERT_TRUE(inner->get({1, 0, "state"}).has_value())
      << "referenced epoch physically dropped: delta chain broken";
  auto back = store.get({2, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, make_state_blob(2, heap, 256));

  // Epoch 3 must rewrite inline (full_interval=2 forbids referencing 1).
  // Epoch 1 stays pinned while epoch 2 (which references it) is live;
  // once the protocol drops epoch 2, the deferred drop of 1 cascades.
  store.put({3, 0, "state"}, make_state_blob(3, heap, 256));
  store.commit(3);
  store.drop_epoch(2);
  EXPECT_FALSE(inner->get({2, 0, "state"}).has_value());
  EXPECT_FALSE(inner->get({1, 0, "state"}).has_value())
      << "unreferenced superseded epochs must be garbage-collected";
  back = store.get({3, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, make_state_blob(3, heap, 256));
}

TEST(CheckpointStore, RetainedFallbackEpochPinsItsHomes) {
  // A superseded epoch can stay live without ever being drop-requested
  // (the detached-shutdown fallback). Its delta references must keep
  // pinning their home epochs even as newer epochs commit without them.
  auto inner = std::make_shared<util::MemoryStorage>();
  CheckpointStore store(inner, sync_opts());
  const std::size_t heap = 64 * 1024;
  store.put({1, 0, "state"}, make_state_blob(1, heap, 256));
  store.commit(1);
  // Epoch 2: stable vs 1 -> refs homed at epoch 1.
  store.put({2, 0, "state"}, make_state_blob(2, heap, 256));
  store.commit(2);
  store.drop_epoch(1);  // deferred: epoch 2 is live and references it
  // Epoch 3: fully different content -> no references to epoch 1 at all.
  store.put({3, 0, "state"}, make_state_blob(3, heap, heap));
  store.commit(3);  // note: NO drop_epoch(2) -- epoch 2 retained (fallback)
  ASSERT_TRUE(inner->get({1, 0, "state"}).has_value())
      << "epoch 1 dropped while the retained epoch 2 still references it";
  auto back = store.get({2, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, make_state_blob(2, heap, 256));
  // Once the fallback epoch itself is dropped, the pin cascades away.
  store.drop_epoch(2);
  EXPECT_FALSE(inner->get({2, 0, "state"}).has_value());
  EXPECT_FALSE(inner->get({1, 0, "state"}).has_value());
}

TEST(CheckpointStore, StartupSweepDropsEpochsLeakedByACrash) {
  // Retention bookkeeping is in-memory: a drop deferred at crash time is
  // forgotten on restart. The restarted store's startup sweep must collect
  // every epoch older than committed - full_interval (provably
  // unreachable under the one-hop reference rule) without touching the
  // epochs recovery may still need.
  auto inner = std::make_shared<util::MemoryStorage>();
  const std::size_t heap = 64 * 1024;
  {
    StoreOptions o = sync_opts();
    o.full_interval = 2;
    CheckpointStore store(inner, o);
    for (int epoch = 1; epoch <= 5; ++epoch) {
      store.put({epoch, 0, "state"}, make_state_blob(epoch, heap, 256));
      store.commit(epoch);
      // Superseded-epoch drops deferred while referenced -- and then the
      // "process" dies before the deferred drops execute: simulate by
      // never dropping at all.
    }
  }
  // Epochs 1..5 all survive on the backend: the crash leaked 1..2.
  ASSERT_EQ(inner->list_epochs(), (std::vector<int>{1, 2, 3, 4, 5}));

  StoreOptions o = sync_opts();
  o.full_interval = 2;
  CheckpointStore restarted(inner, o);
  // committed = 5, horizon = 5 - 2 = 3: epochs 1 and 2 swept, 3..5 kept
  // (5 may reference 4; the detached fallback 4 may reference 3).
  EXPECT_EQ(restarted.list_epochs(), (std::vector<int>{3, 4, 5}));
  // The committed epoch still reconstructs exactly.
  auto back = restarted.get({5, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, make_state_blob(5, heap, 256));
}

TEST(CheckpointStore, StartupSweepIsANoOpWithoutACommit) {
  auto inner = std::make_shared<util::MemoryStorage>();
  inner->put({1, 0, "state"}, random_bytes(512, 3));
  CheckpointStore store(inner, sync_opts());
  // No recovery point: nothing is provably unreachable, nothing is swept.
  EXPECT_EQ(store.list_epochs(), (std::vector<int>{1}));
}

TEST(CheckpointStore, StartupSweepHonoursTheIntervalTheStoreWasWrittenWith) {
  // The sweep's safety proof depends on the full_interval the restorable
  // manifests were *written* under (recorded beside each commit marker),
  // not on the restarted process's configuration: a restart with a
  // smaller interval must not sweep home epochs the recovery point -- or
  // its detached-fallback epoch -- still references.
  auto inner = std::make_shared<util::MemoryStorage>();
  const std::size_t heap = 64 * 1024;
  {
    StoreOptions wide = sync_opts();
    wide.full_interval = 4;
    CheckpointStore store(inner, wide);
    // Mostly-stable state: epochs 2..4 reference chunks homed in epoch 1
    // (4 - 1 = 3 < 4). Every epoch commits, as the protocol does.
    for (int epoch = 1; epoch <= 4; ++epoch) {
      store.put({epoch, 0, "state"}, make_state_blob(epoch, heap, 256));
      store.commit(epoch);
    }
  }
  // Narrower incarnation: its own sweep is bounded by the recorded
  // interval 4 (horizon 0 -- nothing dropped), and its fresh delta index
  // writes epoch 5 fully inline, recording interval 2 beside commit 5.
  StoreOptions narrow = sync_opts();
  narrow.full_interval = 2;
  {
    CheckpointStore store(inner, narrow);
    EXPECT_EQ(store.list_epochs(), (std::vector<int>{1, 2, 3, 4}));
    store.put({5, 0, "state"}, make_state_blob(5, heap, 256));
    store.commit(5);
    store.commit(4);  // recovery re-pointing must not downgrade meta(4)
    store.commit(5);
  }
  // Next restart: the committed epoch 5 records interval 2, but the
  // fallback epoch 4 -- restorable if epoch 5 turns out detached --
  // records interval 4 and references homes in epoch 1. A naive horizon
  // of 5 - 2 = 3 would drop epochs 1..2 and break epoch 4's delta chain;
  // the recorded maximum gives horizon 1 and keeps everything.
  CheckpointStore restarted(inner, narrow);
  EXPECT_EQ(restarted.list_epochs(), (std::vector<int>{1, 2, 3, 4, 5}));
  auto back = restarted.get({4, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, make_state_blob(4, heap, 256));
}

TEST(CheckpointStore, StartupSweepSkipsStoresWithoutARecordedInterval) {
  // A store written before the retention record existed has no safe
  // horizon: the sweep must not guess from the current configuration.
  auto inner = std::make_shared<util::MemoryStorage>();
  inner->put({1, 0, "state"}, random_bytes(512, 3));
  inner->put({9, 0, "state"}, random_bytes(512, 4));
  inner->commit(9);
  StoreOptions o = sync_opts();
  o.full_interval = 2;
  CheckpointStore store(inner, o);
  EXPECT_EQ(store.list_epochs(), (std::vector<int>{1, 9}));
}

TEST(CheckpointStore, AsyncCommitIsABarrier) {
  // 4 MB/s throttle: each 256 KiB epoch takes ~60 ms to "reach the disk".
  auto inner = std::make_shared<util::MemoryStorage>(4ull << 20);
  StoreOptions o;
  o.async = true;
  o.delta = false;  // keep every put the same (throttled) size
  o.codec = CodecId::kNone;
  CheckpointStore store(inner, o);
  const Bytes blob = random_bytes(256 * 1024, 11);

  const auto t0 = std::chrono::steady_clock::now();
  store.put({1, 0, "state"}, blob);
  const auto put_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(put_secs, 0.03) << "put must hand off, not block on the write";

  store.commit(1);  // barrier: must wait out the throttled write
  EXPECT_EQ(inner->committed_epoch(), 1);
  auto back = store.get({1, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blob);
  const auto stats = store.storage_stats();
  EXPECT_GT(stats.commit_stall_ns, 0u) << "commit barrier time unaccounted";
}

TEST(CheckpointStore, KillMidPipelineNeverCommitsUnfinishedEpoch) {
  // The job dies after exactly one of epoch 2's blobs reached the backend
  // (deterministic fault injection, not kill timing: the fault fires on a
  // put *count*, so every run exercises the same interleaving). The
  // recovery point must remain epoch 1, the aborted epoch's blobs must be
  // droppable, and a *different* re-execution of epoch 2 must store and
  // read back correctly (the write-side delta index may not poison it).
  auto inner = std::make_shared<util::MemoryStorage>();
  auto faulty = std::make_shared<util::FaultInjectingStorage>(inner);
  StoreOptions o;
  o.queue_max_blobs = 16;
  o.writer_lanes = 2;
  auto store = std::make_shared<CheckpointStore>(faulty, o);
  const std::size_t heap = 128 * 1024;

  store->put({1, 0, "state"}, make_state_blob(1, heap, 128));
  store->put({1, 1, "state"}, make_state_blob(1, heap, 128));
  store->commit(1);
  ASSERT_EQ(store->committed_epoch(), 1);

  // Epoch 2 in flight; the crash fires after one of its puts lands.
  util::FaultPlan plan;
  plan.fail_after_puts = 1;
  faulty->arm(plan);
  try {
    store->put({2, 0, "state"}, make_state_blob(2, heap, 128));
    store->put({2, 1, "state"}, make_state_blob(2, heap, 128));
    store->commit(2);
    FAIL() << "the injected crash must abort the epoch before commit";
  } catch (const util::InjectedFault&) {
    // The lane surfaced the crash at a later put or at the commit barrier.
  }
  EXPECT_EQ(store->committed_epoch(), 1)
      << "an uncommitted epoch must never become the recovery point";

  // "Restart": the surviving storage is reopened by a fresh store.
  store.reset();
  faulty->disarm();
  store = std::make_shared<CheckpointStore>(faulty, o);
  ASSERT_EQ(store->committed_epoch(), 1);

  // Recovery: read the committed checkpoint, abandon the partial epoch.
  auto back = store->get({1, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, make_state_blob(1, heap, 128));
  store->drop_epoch(2);
  EXPECT_FALSE(inner->get({2, 0, "state"}).has_value());

  // The re-executed epoch 2 diverges (different nondet outcome): its
  // checkpoints must encode against epoch 1, not the dropped blobs.
  store->put({2, 0, "state"}, make_state_blob(2, heap, 4096));
  store->put({2, 1, "state"}, make_state_blob(2, heap, 4096));
  store->commit(2);
  back = store->get({2, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, make_state_blob(2, heap, 4096));
}

TEST(CheckpointStore, BlobLargerThanQueueByteBoundStillDrains) {
  // A single blob above queue_max_bytes must be admitted when the queue
  // is empty (and drained alone); bounding it out would deadlock the
  // enqueue forever, since nothing is in flight to free room.
  auto inner = std::make_shared<util::MemoryStorage>();
  StoreOptions o;
  o.async = true;
  o.queue_max_bytes = 4096;  // far below the blob
  CheckpointStore store(inner, o);
  const Bytes big = random_bytes(256 * 1024, 21);
  store.put({1, 0, "state"}, big);
  store.put({1, 1, "state"}, big);  // second oversized blob queues behind
  store.commit(1);
  auto back = store.get({1, 1, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, big);
}

TEST(CheckpointStore, WriterErrorsSurfaceAtCommit) {
  struct FailingStorage final : util::StableStorage {
    void put(const BlobKey&, const Bytes&) override {
      throw util::CorruptionError("disk on fire");
    }
    std::optional<Bytes> get(const BlobKey&) const override {
      return std::nullopt;
    }
    void commit(int) override {}
    std::optional<int> committed_epoch() const override {
      return std::nullopt;
    }
    void drop_epoch(int) override {}
    std::vector<int> list_epochs() const override { return {}; }
    std::uint64_t total_bytes() const override { return 0; }
    std::uint64_t bytes_written() const override { return 0; }
  };
  CheckpointStore store(std::make_shared<FailingStorage>(), StoreOptions{});
  store.put({1, 0, "state"}, random_bytes(1024, 5));
  EXPECT_THROW(store.commit(1), util::CorruptionError)
      << "a failed write must never be silently committed";
}

TEST(CheckpointStore, ConsumedWriterErrorStillFailsCommit) {
  // A reader's get() drains the lanes and can consume the one-shot writer
  // error before the initiator commits. The commit must still refuse the
  // epoch -- its blob never landed -- until recovery abandons it with
  // drop_epoch.
  auto inner = std::make_shared<util::MemoryStorage>();
  auto faulty = std::make_shared<util::FaultInjectingStorage>(inner);
  util::FaultPlan plan;
  plan.fail_after_puts = 0;  // every put fails while armed
  faulty->arm(plan);
  StoreOptions o;
  o.writer_lanes = 2;
  CheckpointStore store(faulty, o);
  store.put({1, 0, "state"}, make_state_blob(1, 32 * 1024, 128));
  try {
    (void)store.get({1, 1, "state"});  // flush consumes the lane error
    FAIL() << "the writer error must surface at the reader's flush";
  } catch (const util::InjectedFault&) {
  }
  faulty->disarm();
  EXPECT_THROW(store.commit(1), util::CorruptionError)
      << "a consumed writer error must not let the epoch commit";
  // Recovery abandons the epoch; its re-execution commits cleanly.
  store.drop_epoch(1);
  store.put({1, 0, "state"}, make_state_blob(1, 32 * 1024, 128));
  store.commit(1);
  EXPECT_EQ(store.committed_epoch(), 1);
  auto back = store.get({1, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, make_state_blob(1, 32 * 1024, 128));
}

TEST(CheckpointStore, PoolRecyclesScratchBuffers) {
  auto inner = std::make_shared<util::MemoryStorage>();
  CheckpointStore store(inner, sync_opts());
  for (int epoch = 1; epoch <= 6; ++epoch) {
    store.put({epoch, 0, "state"}, make_state_blob(epoch, 32 * 1024, 1024));
  }
  const auto stats = store.pool().stats();
  EXPECT_GT(stats.hits, 0u) << "compression scratch must recycle via the pool";
}

TEST(CheckpointView, CorruptHeaderSizesThrowInsteadOfAllocating) {
  // A bit-rotted header must fail as CorruptionError, never drive a huge
  // allocation (bad_alloc) from attacker/corruption-controlled sizes.
  using statesave::CheckpointBuilder;
  auto craft = [](std::uint32_t chunk_size, std::uint64_t count,
                  std::uint64_t raw_size) {
    util::Writer w;
    w.put<std::uint32_t>(CheckpointBuilder::kMagic);
    w.put<std::uint32_t>(CheckpointBuilder::kVersionChunked);
    w.put<std::uint32_t>(chunk_size);
    w.put<std::uint8_t>(1);  // container
    w.put<std::uint64_t>(count);
    w.put_string("s");
    w.put<std::uint64_t>(raw_size);
    for (int i = 0; i < 64; ++i) w.put<std::uint8_t>(0);
    return w.take();
  };
  // Implausible chunk size (would defeat the chunk-count bound).
  EXPECT_THROW(statesave::CheckpointView{craft(0xFFFF'FFFFu, 1, 1u << 20)},
               util::CorruptionError);
  // Section count exceeding the stream.
  EXPECT_THROW(statesave::CheckpointView{craft(4096, 1ull << 60, 16)},
               util::CorruptionError);
  // Chunk count exceeding the stream.
  EXPECT_THROW(statesave::CheckpointView{craft(4096, 1, 1ull << 50)},
               util::CorruptionError);
}

// --------------------------------------------------------------- v2 sizes

// ---------------------------------------------------------- writer lanes

TEST(CheckpointStore, ParallelLanesDrainConcurrently) {
  // 4 ranks, 4 lanes, 4 MB/s modelled per-node disks, 128 KiB per rank:
  // each write sleeps ~32 ms. Serialized draining would cost ~4x32 ms at
  // the barrier; per-rank lanes overlap the sleeps, so the commit stall
  // must stay well under the serialized sum.
  auto inner = std::make_shared<util::MemoryStorage>(4ull << 20);
  StoreOptions o;
  o.async = true;
  o.delta = false;  // keep every put the same (throttled) size
  o.codec = CodecId::kNone;
  o.writer_lanes = 4;
  CheckpointStore store(inner, o);
  const Bytes blob = random_bytes(128 * 1024, 33);
  for (int rank = 0; rank < 4; ++rank) {
    store.put({1, rank, "state"}, blob);
  }
  store.commit(1);
  const auto stats = store.storage_stats();
  const double stall_ms =
      static_cast<double>(stats.commit_stall_ns) / 1e6;
  EXPECT_LT(stall_ms, 3 * 32.0)
      << "commit barrier cost ~sum-over-lanes: lanes did not overlap";
  // Every lane wrote exactly its rank's blob, and the backend accounted
  // each rank's modelled disk separately.
  const auto lanes = store.lane_stats();
  ASSERT_EQ(lanes.size(), 4u);
  for (const auto& lane : lanes) {
    EXPECT_EQ(lane.puts, 1u);
    EXPECT_GT(lane.write_ns, 0u);
  }
  const auto disk_lanes = inner->lane_stats();
  ASSERT_EQ(disk_lanes.size(), 4u);
  for (std::size_t rank = 0; rank < disk_lanes.size(); ++rank) {
    // Rank 0's disk also takes the commit's tiny retention-interval
    // record (written beside the recovery point for the startup sweep).
    EXPECT_EQ(disk_lanes[rank].puts, rank == 0 ? 2u : 1u);
    EXPECT_GT(disk_lanes[rank].write_ns, 0u)
        << "throttle time unaccounted per rank";
  }
  for (int rank = 0; rank < 4; ++rank) {
    auto back = store.get({1, rank, "state"});
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, blob);
  }
}

TEST(CheckpointStore, LanePreservesPerRankOrder) {
  // Two epochs of the same rank route to the same lane and must encode in
  // order (the delta index depends on it), even with many lanes idle.
  auto inner = std::make_shared<util::MemoryStorage>();
  StoreOptions o;
  o.writer_lanes = 8;
  CheckpointStore store(inner, o);
  const std::size_t heap = 64 * 1024;
  for (int epoch = 1; epoch <= 5; ++epoch) {
    store.put({epoch, 3, "state"}, make_state_blob(epoch, heap, 512));
    store.commit(epoch);
  }
  const auto stats = store.storage_stats();
  EXPECT_GT(stats.ref_chunks, 0u)
      << "in-order epochs on one lane must delta against each other";
  auto back = store.get({5, 3, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, make_state_blob(5, heap, 512));
}

// ------------------------------------------------------- pinning property

TEST(CheckpointStoreProperty, RewritePeriodBoundsPinnedEpochs) {
  // For random section mutation sequences, a superseded epoch may stay
  // GC-pinned only while some live manifest can still reference it --
  // and full_interval forces an inline rewrite of any chunk whose home
  // aged past the period, so no epoch older than (current - full_interval)
  // may survive once its drop was requested.
  constexpr std::int32_t kFullInterval = 4;
  constexpr int kEpochs = 24;
  constexpr int kRanks = 2;
  constexpr std::size_t kChunk = 1024;
  constexpr std::size_t kStateBytes = 16 * kChunk;
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    auto inner = std::make_shared<util::MemoryStorage>();
    StoreOptions o;
    o.writer_lanes = kRanks;
    o.chunk_size = kChunk;
    o.full_interval = kFullInterval;
    CheckpointStore store(inner, o);
    util::Rng rng(seed);
    // Persistent per-rank state, mutated chunk-wise at random each epoch.
    std::vector<Bytes> state(kRanks);
    for (int r = 0; r < kRanks; ++r) {
      state[r] = random_bytes(kStateBytes, seed + static_cast<unsigned>(r));
    }
    std::vector<Bytes> reference(kRanks);
    for (int epoch = 1; epoch <= kEpochs; ++epoch) {
      for (int r = 0; r < kRanks; ++r) {
        const auto mutations = rng.next_u64() % 6;  // 0..5 chunks rewritten
        for (std::uint64_t m = 0; m < mutations; ++m) {
          const auto chunk = rng.next_u64() % (kStateBytes / kChunk);
          for (std::size_t i = 0; i < kChunk; ++i) {
            state[r][chunk * kChunk + i] =
                static_cast<std::byte>(rng.next_u64() & 0xFF);
          }
        }
        statesave::CheckpointBuilder b;
        b.add_section("heap", state[r]);
        reference[r] = b.finish();
        store.put({epoch, r, "state"}, reference[r]);
      }
      store.commit(epoch);
      if (epoch > 1) store.drop_epoch(epoch - 1);

      // Invariant 1: the current epoch always reconstructs bit-exactly.
      for (int r = 0; r < kRanks; ++r) {
        auto back = store.get({epoch, r, "state"});
        ASSERT_TRUE(back.has_value()) << "seed " << seed << " ep " << epoch;
        ASSERT_EQ(*back, reference[r]) << "seed " << seed << " ep " << epoch;
      }
      // Invariant 2: every drop-requested epoch older than the rewrite
      // period is physically gone -- nothing may pin it that long.
      for (int old_epoch = 1; old_epoch <= epoch - kFullInterval;
           ++old_epoch) {
        for (int r = 0; r < kRanks; ++r) {
          EXPECT_FALSE(inner->get({old_epoch, r, "state"}).has_value())
              << "epoch " << old_epoch << " still pinned at epoch " << epoch
              << " (full_interval " << kFullInterval << ", seed " << seed
              << ")";
        }
      }
    }
  }
}

TEST(CheckpointView, ChunkedContainerEdgeSizes) {
  // Section sizes around the chunk boundary survive the chunked round
  // trip through the store (tail-chunk handling).
  auto inner = std::make_shared<util::MemoryStorage>();
  StoreOptions o = sync_opts();
  o.chunk_size = 256;
  CheckpointStore store(inner, o);
  statesave::CheckpointBuilder b;
  b.add_section("empty", {});
  b.add_section("tiny", compressible_bytes(3));
  b.add_section("exact", compressible_bytes(512));
  b.add_section("tail", compressible_bytes(513));
  const Bytes blob = b.finish();
  store.put({1, 0, "state"}, blob);
  auto back = store.get({1, 0, "state"});
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blob);
}

}  // namespace
}  // namespace c3::ckptstore
