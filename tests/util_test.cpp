// Unit tests for the util module: archives, CRC, RNG, stable storage.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>

#include "statesave/checkpoint.hpp"
#include "util/archive.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stable_storage.hpp"

namespace c3::util {
namespace {

// ---------------------------------------------------------------- Archive

TEST(Archive, ScalarRoundTrip) {
  Writer w;
  w.put<std::int32_t>(-7);
  w.put<std::uint64_t>(0xDEADBEEFCAFEBABEull);
  w.put<double>(3.25);
  w.put<bool>(true);

  Reader r(w.bytes());
  EXPECT_EQ(r.get<std::int32_t>(), -7);
  EXPECT_EQ(r.get<std::uint64_t>(), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get<bool>(), true);
  EXPECT_TRUE(r.empty());
}

TEST(Archive, StringAndBytesRoundTrip) {
  Writer w;
  w.put_string("hello checkpoint");
  w.put_string("");
  Bytes blob{std::byte{1}, std::byte{2}, std::byte{3}};
  w.put_bytes(blob);

  Reader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello checkpoint");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_bytes(), blob);
}

TEST(Archive, VectorRoundTrip) {
  Writer w;
  std::vector<std::int64_t> v{1, -2, 3, -4};
  w.put_vector(v);
  std::vector<float> empty;
  w.put_vector(empty);

  Reader r(w.bytes());
  EXPECT_EQ(r.get_vector<std::int64_t>(), v);
  EXPECT_TRUE(r.get_vector<float>().empty());
}

TEST(Archive, UnderflowThrowsCorruption) {
  Writer w;
  w.put<std::int32_t>(1);
  Reader r(w.bytes());
  (void)r.get<std::int32_t>();
  EXPECT_THROW((void)r.get<std::int32_t>(), CorruptionError);
}

TEST(Archive, TruncatedStringThrows) {
  Writer w;
  w.put_string("0123456789");
  auto bytes = w.take();
  bytes.resize(bytes.size() - 3);
  Reader r(bytes);
  EXPECT_THROW((void)r.get_string(), CorruptionError);
}

TEST(Archive, CorruptVectorLengthThrowsInsteadOfWrapping) {
  // A length prefix of 2^61 elements of 8 bytes wraps n * sizeof(T) to 0;
  // the length check must reject it instead of attempting a huge memcpy.
  Writer w;
  w.put<std::uint64_t>(std::uint64_t{1} << 61);
  w.put<std::uint64_t>(0xDEAD);
  Reader r(w.bytes());
  EXPECT_THROW((void)r.get_vector<std::uint64_t>(), CorruptionError);
}

TEST(Archive, SizedWriterRoundTrips) {
  Writer sized(128);
  sized.put<std::uint32_t>(7);
  EXPECT_EQ(sized.size(), 4u);
  sized.reserve(64);
  sized.put<std::uint16_t>(3);
  Reader r(sized.bytes());
  EXPECT_EQ(r.get<std::uint32_t>(), 7u);
  EXPECT_EQ(r.get<std::uint16_t>(), 3);
}

TEST(Archive, RawBytesNoPrefix) {
  Writer w;
  Bytes raw{std::byte{9}, std::byte{8}};
  w.put_raw(raw);
  Reader r(w.bytes());
  EXPECT_EQ(r.get_raw(2), raw);
  EXPECT_TRUE(r.empty());
}

// ------------------------------------------------------------------ CRC32

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926, the classic check value.
  const char* s = "123456789";
  std::span<const std::byte> b{reinterpret_cast<const std::byte*>(s), 9};
  EXPECT_EQ(crc32(b), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(Crc32, ChunkedEqualsWhole) {
  Bytes data(1000);
  Rng rng(42);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_u64() & 0xFF);
  const auto whole = crc32(data);
  std::uint32_t chunked = 0;
  chunked = crc32(std::span(data).first(137), chunked);
  chunked = crc32(std::span(data).subspan(137), chunked);
  EXPECT_EQ(whole, chunked);
}

TEST(Crc32, DetectsBitFlip) {
  Bytes data(64, std::byte{0x5A});
  const auto before = crc32(data);
  data[17] ^= std::byte{0x01};
  EXPECT_NE(crc32(data), before);
}

// -------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIndependence) {
  Rng base(7);
  Rng f0 = base.fork(0), f1 = base.fork(1);
  EXPECT_NE(f0.next_u64(), f1.next_u64());
}

TEST(Rng, StateRoundTrip) {
  Rng a(99);
  (void)a.next_u64();
  const auto st = a.state();
  const auto expect = a.next_u64();
  Rng b;
  b.set_state(st);
  EXPECT_EQ(b.next_u64(), expect);
}

TEST(Rng, NextBelowInRange) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(6);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --------------------------------------------------------- StableStorage

// Both backends must satisfy the same contract; run the suite over each.
class StorageTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "memory") {
      storage_ = std::make_unique<MemoryStorage>();
    } else {
      static int counter = 0;
      dir_ = std::filesystem::temp_directory_path() /
             ("c3_storage_test_" + std::to_string(counter++));
      std::filesystem::remove_all(dir_);
      storage_ = std::make_unique<DiskStorage>(dir_);
    }
  }
  void TearDown() override {
    storage_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<StableStorage> storage_;
  std::filesystem::path dir_;
};

TEST_P(StorageTest, PutGetRoundTrip) {
  Bytes data{std::byte{1}, std::byte{2}, std::byte{3}};
  BlobKey key{.epoch = 1, .rank = 2, .section = "state"};
  storage_->put(key, data);
  auto back = storage_->get(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST_P(StorageTest, MissingBlobIsNullopt) {
  EXPECT_FALSE(storage_->get({.epoch = 9, .rank = 0, .section = "nope"}));
}

TEST_P(StorageTest, OverwriteReplaces) {
  BlobKey key{.epoch = 0, .rank = 0, .section = "log"};
  storage_->put(key, Bytes(10, std::byte{0xAA}));
  storage_->put(key, Bytes(3, std::byte{0xBB}));
  auto back = storage_->get(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 3u);
  EXPECT_EQ((*back)[0], std::byte{0xBB});
}

TEST_P(StorageTest, KeysAreIndependent) {
  storage_->put({.epoch = 1, .rank = 0, .section = "s"}, Bytes(1, std::byte{1}));
  storage_->put({.epoch = 1, .rank = 1, .section = "s"}, Bytes(1, std::byte{2}));
  storage_->put({.epoch = 2, .rank = 0, .section = "s"}, Bytes(1, std::byte{3}));
  EXPECT_EQ((*storage_->get({.epoch = 1, .rank = 0, .section = "s"}))[0],
            std::byte{1});
  EXPECT_EQ((*storage_->get({.epoch = 1, .rank = 1, .section = "s"}))[0],
            std::byte{2});
  EXPECT_EQ((*storage_->get({.epoch = 2, .rank = 0, .section = "s"}))[0],
            std::byte{3});
}

TEST_P(StorageTest, CommitIsSticky) {
  EXPECT_FALSE(storage_->committed_epoch().has_value());
  storage_->commit(3);
  ASSERT_TRUE(storage_->committed_epoch().has_value());
  EXPECT_EQ(*storage_->committed_epoch(), 3);
  storage_->commit(4);
  EXPECT_EQ(*storage_->committed_epoch(), 4);
}

TEST_P(StorageTest, DropEpochRemovesOnlyThatEpoch) {
  storage_->put({.epoch = 1, .rank = 0, .section = "s"}, Bytes(5, std::byte{1}));
  storage_->put({.epoch = 2, .rank = 0, .section = "s"}, Bytes(5, std::byte{2}));
  storage_->drop_epoch(1);
  EXPECT_FALSE(storage_->get({.epoch = 1, .rank = 0, .section = "s"}));
  EXPECT_TRUE(storage_->get({.epoch = 2, .rank = 0, .section = "s"}));
}

TEST_P(StorageTest, ListEpochsEnumeratesExactlyTheStoredEpochs) {
  EXPECT_TRUE(storage_->list_epochs().empty());
  storage_->put({.epoch = 4, .rank = 0, .section = "s"}, Bytes(1, std::byte{1}));
  storage_->put({.epoch = 1, .rank = 0, .section = "s"}, Bytes(1, std::byte{1}));
  storage_->put({.epoch = 1, .rank = 1, .section = "log"},
                Bytes(1, std::byte{1}));
  storage_->put({.epoch = 7, .rank = 2, .section = "s"}, Bytes(1, std::byte{1}));
  EXPECT_EQ(storage_->list_epochs(), (std::vector<int>{1, 4, 7}));
  storage_->drop_epoch(4);
  EXPECT_EQ(storage_->list_epochs(), (std::vector<int>{1, 7}));
}

TEST_P(StorageTest, BytesWrittenAccumulates) {
  const auto before = storage_->bytes_written();
  storage_->put({.epoch = 0, .rank = 0, .section = "a"}, Bytes(100));
  storage_->put({.epoch = 0, .rank = 0, .section = "a"}, Bytes(50));
  EXPECT_EQ(storage_->bytes_written() - before, 150u);
}

TEST_P(StorageTest, EmptyBlobRoundTrip) {
  BlobKey key{.epoch = 0, .rank = 0, .section = "empty"};
  storage_->put(key, Bytes{});
  auto back = storage_->get(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageTest,
                         ::testing::Values("memory", "disk"),
                         [](const auto& info) { return info.param; });

// ------------------------------------------- DiskStorage crash atomicity
//
// The recovery point must never be believable unless it was written whole:
// a crash can leave a torn COMMIT marker, a stale temp file, or a damaged
// blob, and every one of those must read as "no commit" / detectable
// corruption rather than as a valid checkpoint.

TEST(DiskStorageCrash, AbsentCommitMarkerMeansNoRecoveryPoint) {
  const auto dir =
      std::filesystem::temp_directory_path() / "c3_crash_absent_commit";
  std::filesystem::remove_all(dir);
  DiskStorage s(dir);
  s.put({.epoch = 1, .rank = 0, .section = "state"}, Bytes(16, std::byte{1}));
  // Blobs were written but the initiator died before commit.
  EXPECT_FALSE(s.committed_epoch().has_value());
  std::filesystem::remove_all(dir);
}

TEST(DiskStorageCrash, TornCommitMarkerReadsAsNoCommit) {
  const auto dir =
      std::filesystem::temp_directory_path() / "c3_crash_torn_commit";
  std::filesystem::remove_all(dir);
  DiskStorage s(dir);
  s.commit(7);
  ASSERT_EQ(*s.committed_epoch(), 7);
  // A crash mid-write leaves garbage where the epoch number should be.
  {
    std::ofstream out(dir / "COMMIT", std::ios::trunc);
    out << "xy";
  }
  EXPECT_FALSE(DiskStorage(dir).committed_epoch().has_value())
      << "a torn COMMIT marker must not parse as a recovery point";
  // An empty marker likewise.
  {
    std::ofstream out(dir / "COMMIT", std::ios::trunc);
  }
  EXPECT_FALSE(DiskStorage(dir).committed_epoch().has_value());
  std::filesystem::remove_all(dir);
}

TEST(DiskStorageCrash, LeftoverCommitTmpIsIgnored) {
  const auto dir =
      std::filesystem::temp_directory_path() / "c3_crash_commit_tmp";
  std::filesystem::remove_all(dir);
  DiskStorage s(dir);
  s.commit(3);
  // A later commit died after writing COMMIT.tmp but before the rename:
  // the previous marker must win.
  {
    std::ofstream out(dir / "COMMIT.tmp", std::ios::trunc);
    out << 9 << "\n";
  }
  EXPECT_EQ(*DiskStorage(dir).committed_epoch(), 3);
  std::filesystem::remove_all(dir);
}

TEST(DiskStorageCrash, LeftoverBlobTmpNeverLooksValid) {
  const auto dir =
      std::filesystem::temp_directory_path() / "c3_crash_blob_tmp";
  std::filesystem::remove_all(dir);
  DiskStorage s(dir);
  const BlobKey key{.epoch = 2, .rank = 0, .section = "state"};
  s.put(key, Bytes(64, std::byte{5}));
  // A torn write of a *newer* blob leaves only a .tmp; get() must still
  // return the last complete version, never the partial file.
  {
    std::ofstream out(dir / "ep2" / "rank0" / "state.blob.tmp",
                      std::ios::binary | std::ios::trunc);
    out << "partial";
  }
  auto back = s.get(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), 64u);
  std::filesystem::remove_all(dir);
}

TEST(DiskStorageCrash, CorruptedBlobFailsCheckpointValidation) {
  const auto dir =
      std::filesystem::temp_directory_path() / "c3_crash_corrupt_blob";
  std::filesystem::remove_all(dir);
  DiskStorage s(dir);
  const BlobKey key{.epoch = 1, .rank = 0, .section = "state"};
  statesave::CheckpointBuilder b;
  b.add_section("payload", Bytes(256, std::byte{7}));
  s.put(key, b.finish());

  // Flip one payload byte on disk (bit rot / partial sector write).
  const auto path = dir / "ep1" / "rank0" / "state.blob";
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-10, std::ios::end);
    char c;
    f.seekg(-10, std::ios::end);
    f.get(c);
    f.seekp(-10, std::ios::end);
    c = static_cast<char>(c ^ 0x40);
    f.put(c);
  }
  auto blob = s.get(key);
  ASSERT_TRUE(blob.has_value());
  EXPECT_THROW(statesave::CheckpointView{*blob}, CorruptionError)
      << "a corrupted checkpoint must fail CRC validation, not restore";

  // Truncation is caught the same way (underflow or CRC).
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  blob = s.get(key);
  ASSERT_TRUE(blob.has_value());
  EXPECT_THROW(statesave::CheckpointView{*blob}, CorruptionError);
  std::filesystem::remove_all(dir);
}

TEST(DiskStorageCrash, SupersededEpochGcAfterNewCommit) {
  const auto dir = std::filesystem::temp_directory_path() / "c3_crash_gc";
  std::filesystem::remove_all(dir);
  DiskStorage s(dir);
  s.put({.epoch = 1, .rank = 0, .section = "state"}, Bytes(32, std::byte{1}));
  s.put({.epoch = 1, .rank = 1, .section = "state"}, Bytes(32, std::byte{1}));
  s.commit(1);
  s.put({.epoch = 2, .rank = 0, .section = "state"}, Bytes(32, std::byte{2}));
  s.put({.epoch = 2, .rank = 1, .section = "state"}, Bytes(32, std::byte{2}));
  s.commit(2);
  s.drop_epoch(1);  // the protocol GCs the superseded checkpoint
  EXPECT_FALSE(std::filesystem::exists(dir / "ep1"));
  EXPECT_FALSE(s.get({.epoch = 1, .rank = 0, .section = "state"}));
  EXPECT_TRUE(s.get({.epoch = 2, .rank = 0, .section = "state"}));
  EXPECT_EQ(*s.committed_epoch(), 2);
  // Dropping an epoch that never existed is a harmless no-op.
  s.drop_epoch(40);
  std::filesystem::remove_all(dir);
}

TEST(DiskStorage, ListEpochsIgnoresForeignDirectories) {
  const auto dir =
      std::filesystem::temp_directory_path() / "c3_storage_list_epochs";
  std::filesystem::remove_all(dir);
  DiskStorage s(dir);
  s.put({.epoch = 3, .rank = 0, .section = "state"}, Bytes(8, std::byte{1}));
  // Foreign content beside real epoch directories: none of these may be
  // reported (an "ep3-backup" misread as epoch 3 would make the startup
  // sweep drop data that was deliberately set aside).
  std::filesystem::create_directories(dir / "ep3-backup");
  std::filesystem::create_directories(dir / "ep5.old");
  std::filesystem::create_directories(dir / "epochs");
  std::filesystem::create_directories(dir / "scratch");
  EXPECT_EQ(s.list_epochs(), (std::vector<int>{3}));
  std::filesystem::remove_all(dir);
}

TEST(DiskStorage, CommitSurvivesReopen) {
  const auto dir =
      std::filesystem::temp_directory_path() / "c3_storage_reopen_test";
  std::filesystem::remove_all(dir);
  {
    DiskStorage s(dir);
    s.put({.epoch = 5, .rank = 1, .section = "state"}, Bytes(7, std::byte{9}));
    s.commit(5);
  }
  {
    DiskStorage s(dir);
    ASSERT_TRUE(s.committed_epoch().has_value());
    EXPECT_EQ(*s.committed_epoch(), 5);
    auto blob = s.get({.epoch = 5, .rank = 1, .section = "state"});
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(blob->size(), 7u);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace c3::util
