// Unit tests for the pooled zero-copy message buffers: size-class
// boundaries, reuse after release, MsgBuffer headroom invariants, and the
// end-to-end copy/allocation accounting of the message path.
#include <gtest/gtest.h>

#include <cstring>

#include "core/job.hpp"
#include "util/buffer_pool.hpp"

namespace c3 {
namespace {

using util::BufferPool;
using util::Bytes;
using util::MsgBuffer;

// ------------------------------------------------------------- size classes

TEST(BufferPool, ClassCapacityBoundaries) {
  EXPECT_EQ(BufferPool::class_capacity(0), BufferPool::kMinClassBytes);
  EXPECT_EQ(BufferPool::class_capacity(1), BufferPool::kMinClassBytes);
  EXPECT_EQ(BufferPool::class_capacity(64), 64u);
  EXPECT_EQ(BufferPool::class_capacity(65), 128u);
  EXPECT_EQ(BufferPool::class_capacity(128), 128u);
  EXPECT_EQ(BufferPool::class_capacity(129), 256u);
  EXPECT_EQ(BufferPool::class_capacity(4096), 4096u);
  EXPECT_EQ(BufferPool::class_capacity(4097), 8192u);
  EXPECT_EQ(BufferPool::class_capacity(BufferPool::kMaxClassBytes),
            BufferPool::kMaxClassBytes);
  // Beyond the largest class the size is taken exactly (unpooled).
  EXPECT_EQ(BufferPool::class_capacity(BufferPool::kMaxClassBytes + 1),
            BufferPool::kMaxClassBytes + 1);
}

TEST(BufferPool, AcquireSizesAndCapacity) {
  BufferPool pool;
  Bytes b = pool.acquire(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_GE(b.capacity(), 128u);
}

// ---------------------------------------------------------------- recycling

TEST(BufferPool, ReleaseThenAcquireReusesBuffer) {
  BufferPool pool;
  Bytes b = pool.acquire(1000);
  const std::byte* data = b.data();
  pool.release(std::move(b));
  EXPECT_EQ(pool.free_count(), 1u);

  Bytes again = pool.acquire(900);  // same 1024-byte class
  EXPECT_EQ(again.data(), data);    // literally the same allocation
  EXPECT_EQ(again.size(), 900u);
  EXPECT_EQ(pool.free_count(), 0u);

  const auto st = pool.stats();
  EXPECT_EQ(st.acquires, 2u);
  EXPECT_EQ(st.allocs, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.releases, 1u);
}

TEST(BufferPool, FreshFlagReportsPoolMiss) {
  BufferPool pool;
  bool fresh = false;
  Bytes b = pool.acquire(64, &fresh);
  EXPECT_TRUE(fresh);
  pool.release(std::move(b));
  Bytes c = pool.acquire(64, &fresh);
  EXPECT_FALSE(fresh);
  (void)c;
}

TEST(BufferPool, DifferentClassDoesNotReuse) {
  BufferPool pool;
  Bytes small = pool.acquire(64);
  pool.release(std::move(small));
  bool fresh = false;
  Bytes big = pool.acquire(8192, &fresh);
  EXPECT_TRUE(fresh);  // 64-byte buffer cannot serve the 8 KiB class
  (void)big;
}

TEST(BufferPool, OversizedBuffersAreNotPooled) {
  BufferPool pool;
  Bytes huge = pool.acquire(BufferPool::kMaxClassBytes + 1);
  pool.release(std::move(huge));
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.stats().discards, 1u);
}

TEST(BufferPool, PerClassFreeListIsBounded) {
  BufferPool pool;
  std::vector<Bytes> held;
  for (std::size_t i = 0; i < BufferPool::kMaxFreePerClass + 10; ++i) {
    held.push_back(pool.acquire(256));
  }
  for (auto& b : held) pool.release(std::move(b));
  EXPECT_EQ(pool.free_count(), BufferPool::kMaxFreePerClass);
  EXPECT_EQ(pool.stats().discards, 10u);
}

// ---------------------------------------------------------------- MsgBuffer

TEST(MsgBuffer, HeadroomInvariants) {
  BufferPool pool;
  MsgBuffer mb(pool, /*headroom=*/9, /*payload_size=*/4096);
  EXPECT_EQ(mb.headroom(), 9u);
  EXPECT_EQ(mb.payload_size(), 4096u);
  EXPECT_EQ(mb.size(), 4105u);
  EXPECT_EQ(mb.header().size(), 9u);
  EXPECT_EQ(mb.payload().size(), 4096u);
  // Header and payload are adjacent regions of one buffer.
  EXPECT_EQ(mb.header().data() + 9, mb.payload().data());
}

TEST(MsgBuffer, TakeSurrendersWholeFrame) {
  BufferPool pool;
  MsgBuffer mb(pool, 4, 16);
  std::memset(mb.header().data(), 0xAB, 4);
  std::memset(mb.payload().data(), 0xCD, 16);
  Bytes frame = mb.take();
  ASSERT_EQ(frame.size(), 20u);
  EXPECT_EQ(frame[0], std::byte{0xAB});
  EXPECT_EQ(frame[4], std::byte{0xCD});
  EXPECT_EQ(frame[19], std::byte{0xCD});
}

TEST(MsgBuffer, AdoptedBufferKeepsHeadroomSplit) {
  BufferPool pool;
  MsgBuffer mb(pool.acquire(104), 8);
  EXPECT_EQ(mb.headroom(), 8u);
  EXPECT_EQ(mb.payload_size(), 96u);
}

// ------------------------------------------- end-to-end copy/alloc accounting

// The zero-copy regression: in steady state each delivered application
// message costs exactly one counted payload copy (the final header-strip
// memcpy into the user's buffer) and no fresh allocation (pool hit).
TEST(ZeroCopyPath, OneCopyPerDeliveredMessageAndPoolHits) {
  constexpr std::size_t kPayload = 4096;
  constexpr int kWindow = 32;  // in-flight bound, below the pool's class cap
  constexpr int kWarmupRounds = 2;
  constexpr int kMeasuredRounds = 16;
  constexpr int kMeasured = kWindow * kMeasuredRounds;

  std::uint64_t copied_delta = 0;
  std::uint64_t allocs_delta = 0;

  core::JobConfig cfg;
  cfg.ranks = 2;
  cfg.level = core::InstrumentLevel::kFull;
  core::Job job(cfg);
  job.run([&](core::Process& p) {
    std::vector<std::byte> buf(kPayload, std::byte{0x5C});
    std::byte ack{};
    p.complete_registration();
    auto& fabric = p.api().runtime().fabric();
    std::uint64_t copied_mark = 0;
    std::uint64_t allocs_mark = 0;
    for (int phase = 0; phase < 2; ++phase) {
      const int rounds = (phase == 0) ? kWarmupRounds : kMeasuredRounds;
      // Windowed stream with a per-round ack, so at most kWindow message
      // buffers are in flight and warmup fully populates the free list.
      for (int r = 0; r < rounds; ++r) {
        if (p.rank() == 0) {
          for (int i = 0; i < kWindow; ++i) p.send(buf, 1, 3);
          p.recv({&ack, 1}, 1, 4);
        } else {
          for (int i = 0; i < kWindow; ++i) p.recv(buf, 0, 3);
          p.send({&ack, 1}, 0, 4);
        }
      }
      // Rank 0 passes the phase boundary only after rank 1 acked the last
      // round, i.e. after every measured delivery was counted.
      if (phase == 0) {
        copied_mark = fabric.stats().copied_bytes.load();
        allocs_mark = fabric.stats().allocs.load();
      } else if (p.rank() == 0) {
        copied_delta = fabric.stats().copied_bytes.load() - copied_mark;
        allocs_delta = fabric.stats().allocs.load() - allocs_mark;
      }
    }
  });

  // Exactly one payload copy per delivered 4 KiB message, plus one 1-byte
  // ack delivery per measured round.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kMeasured) * kPayload;
  EXPECT_GE(copied_delta, expected);
  EXPECT_LE(copied_delta, expected + 2 * kMeasuredRounds);

  // Steady state runs out of the pool: no per-message heap allocation.
  // The allowance covers request-table rehashing plus scheduling noise on
  // an oversubscribed machine (a descheduled receiver lets acquires run
  // ahead of the releases that would have fed them); even at the bound
  // this is 0.03 allocs per delivered message.
  EXPECT_LE(allocs_delta, 16u);
}

}  // namespace
}  // namespace c3
