// End-to-end protocol behaviour without failures: global checkpoints
// complete and commit while application traffic is in flight, messages are
// classified correctly, and the counts-based late-message completion works
// under adversarial reordering (paper Sections 4.1-4.4).
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <vector>

#include "core/job.hpp"
#include "core/process.hpp"

namespace c3::core {
namespace {

/// Collects per-rank protocol stats at the end of each rank's main.
struct StatsSink {
  std::mutex mu;
  std::vector<ProcessStats> by_rank;
  void put(int rank, const ProcessStats& s) {
    std::lock_guard lock(mu);
    if (by_rank.size() <= static_cast<std::size_t>(rank)) {
      by_rank.resize(static_cast<std::size_t>(rank) + 1);
    }
    by_rank[static_cast<std::size_t>(rank)] = s;
  }
};

TEST(Protocol, CheckpointCommitsWithoutTraffic) {
  JobConfig cfg;
  cfg.ranks = 4;
  cfg.policy = CheckpointPolicy::every(1);
  cfg.policy.max_checkpoints = 1;
  Job job(cfg);
  auto report = job.run([](Process& p) {
    p.complete_registration();
    p.potential_checkpoint();
  });
  EXPECT_EQ(report.executions, 1);
  ASSERT_TRUE(report.last_committed_epoch.has_value());
  EXPECT_EQ(*report.last_committed_epoch, 1);
}

TEST(Protocol, MultipleSequentialCheckpointsCommit) {
  JobConfig cfg;
  cfg.ranks = 3;
  cfg.policy = CheckpointPolicy::every(2);
  Job job(cfg);
  auto report = job.run([](Process& p) {
    int acc = 0;
    p.register_value("acc", acc);
    p.complete_registration();
    for (int iter = 0; iter < 12; ++iter) {
      // Ring neighbour exchange keeps traffic flowing across epochs.
      const int right = (p.rank() + 1) % p.nranks();
      const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
      p.send_value(iter * 100 + p.rank(), right, 0);
      const int got = p.recv_value<int>(left, 0);
      acc += got;
      p.potential_checkpoint();
    }
  });
  // A new checkpoint may only start once the previous one has committed
  // (several control round-trips), so fewer than iters/2 epochs complete;
  // at least 2 must.
  ASSERT_TRUE(report.last_committed_epoch.has_value());
  EXPECT_GE(*report.last_committed_epoch, 2);
}

// Deterministic late/early construction on 2 ranks:
//   rank 0 (initiator) checkpoints first, then receives a message rank 1
//   sent in the old epoch  -> late at rank 0;
//   rank 0 then sends to rank 1, which has not checkpointed yet -> early at
//   rank 1.
TEST(Protocol, LateAndEarlyMessagesAreClassified) {
  auto sink = std::make_shared<StatsSink>();
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.policy = CheckpointPolicy::every(1);
  cfg.policy.max_checkpoints = 1;
  Job job(cfg);
  job.run([sink](Process& p) {
    p.complete_registration();
    if (p.rank() == 0) {
      // Initiate + take the local checkpoint before receiving A.
      p.potential_checkpoint();
      EXPECT_EQ(p.epoch(), 1);
      EXPECT_TRUE(p.logging());
      const int a = p.recv_value<int>(1, /*tag=*/1);  // late
      EXPECT_EQ(a, 111);
      p.send_value(222, 1, /*tag=*/2);  // early at rank 1
    } else {
      p.send_value(111, 0, /*tag=*/1);       // sent in epoch 0
      const int b = p.recv_value<int>(0, 2);  // received in epoch 0 -> early
      EXPECT_EQ(b, 222);
      EXPECT_EQ(p.epoch(), 0) << "rank 1 must not have checkpointed yet";
      p.potential_checkpoint();  // now take the local checkpoint
    }
    sink->put(p.rank(), p.stats());
  });
  ASSERT_EQ(sink->by_rank.size(), 2u);
  EXPECT_EQ(sink->by_rank[0].late_messages, 1u);
  EXPECT_EQ(sink->by_rank[0].early_messages, 0u);
  EXPECT_EQ(sink->by_rank[1].early_messages, 1u);
  EXPECT_EQ(sink->by_rank[1].late_messages, 0u);
}

// The same scenario with the full piggyback cross-check enabled: the packed
// color rule must agree with direct epoch comparison on live traffic.
TEST(Protocol, PackedClassificationValidatedAgainstEpochs) {
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.piggyback = PiggybackMode::kFull;
  cfg.validate_classification = true;
  cfg.policy = CheckpointPolicy::every(1);
  cfg.policy.max_checkpoints = 1;
  Job job(cfg);
  job.run([](Process& p) {
    p.complete_registration();
    if (p.rank() == 0) {
      p.potential_checkpoint();
      (void)p.recv_value<int>(1, 1);
      p.send_value(2, 1, 2);
    } else {
      p.send_value(1, 0, 1);
      (void)p.recv_value<int>(0, 2);
      p.potential_checkpoint();
    }
  });
}

// Counts-based completion of late-message receipt must be correct under
// adversarial reordering (the non-FIFO case FIFO-marker protocols get
// wrong, Section 3.3 / 4.3). Many late messages from several senders are
// interleaved with the control traffic.
class LateCompletionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LateCompletionTest, AllLateMessagesCollectedUnderReorder) {
  auto sink = std::make_shared<StatsSink>();
  JobConfig cfg;
  cfg.ranks = 4;
  cfg.net.order = simmpi::NetConfig::Order::kRandomReorder;
  cfg.net.seed = GetParam();
  cfg.net.p_hold = 0.7;
  cfg.net.max_hold = 6;
  cfg.policy = CheckpointPolicy::every(1);
  cfg.policy.max_checkpoints = 1;
  Job job(cfg);
  constexpr int kBurst = 10;
  job.run([sink](Process& p) {
    p.complete_registration();
    if (p.rank() == 0) {
      // Checkpoint before receiving anything: every burst message sent by
      // ranks 1..3 in epoch 0 becomes a late message at rank 0.
      p.potential_checkpoint();
      long long sum = 0;
      for (int i = 0; i < 3 * kBurst; ++i) {
        sum += p.recv_value<int>(simmpi::kAnySource, 7);
      }
      EXPECT_EQ(sum, 3LL * kBurst * (kBurst - 1) / 2);
    } else {
      for (int i = 0; i < kBurst; ++i) {
        p.send_value(i, 0, 7);
      }
      p.potential_checkpoint();
    }
    sink->put(p.rank(), p.stats());
  });
  // Every burst message was late at rank 0 and logged for replay.
  EXPECT_EQ(sink->by_rank[0].late_messages,
            static_cast<std::uint64_t>(3 * kBurst));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LateCompletionTest,
                         ::testing::Values(3ull, 17ull, 1002ull));

TEST(Protocol, RawLevelBypassesEverything) {
  auto sink = std::make_shared<StatsSink>();
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.level = InstrumentLevel::kRaw;
  cfg.policy = CheckpointPolicy::every(1);
  Job job(cfg);
  auto report = job.run([sink](Process& p) {
    if (p.rank() == 0) {
      p.send_value(1, 1, 0);
    } else {
      EXPECT_EQ(p.recv_value<int>(0, 0), 1);
    }
    p.potential_checkpoint();
    sink->put(p.rank(), p.stats());
  });
  EXPECT_FALSE(report.last_committed_epoch.has_value());
  EXPECT_EQ(sink->by_rank[0].checkpoints_taken, 0u);
  EXPECT_EQ(sink->by_rank[0].piggyback_bytes, 0u);
}

TEST(Protocol, PiggybackOnlyAttachesDataButNeverCheckpoints) {
  auto sink = std::make_shared<StatsSink>();
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.level = InstrumentLevel::kPiggybackOnly;
  cfg.policy = CheckpointPolicy::every(1);
  Job job(cfg);
  auto report = job.run([sink](Process& p) {
    if (p.rank() == 0) {
      p.send_value(5, 1, 0);
    } else {
      EXPECT_EQ(p.recv_value<int>(0, 0), 5);
    }
    p.potential_checkpoint();
    sink->put(p.rank(), p.stats());
  });
  EXPECT_FALSE(report.last_committed_epoch.has_value());
  EXPECT_EQ(sink->by_rank[0].checkpoints_taken, 0u);
  EXPECT_GT(sink->by_rank[0].piggyback_bytes, 0u);
  EXPECT_EQ(sink->by_rank[1].intra_epoch_messages, 1u);
}

TEST(Protocol, CollectivesLoggedWhileLogging) {
  // Scheduling-dependent scenario: the allreduce must land while every
  // rank's logging window is still open. A legal-but-unwanted ordering
  // (phase 3 completing on some rank before its allreduce) closes the
  // window first, so retry until the scenario arises; the collective's
  // correctness is asserted on every attempt.
  bool all_logged = false;
  for (int attempt = 0; attempt < 25 && !all_logged; ++attempt) {
    auto sink = std::make_shared<StatsSink>();
    JobConfig cfg;
    cfg.ranks = 3;
    cfg.policy = CheckpointPolicy::every(1);
    cfg.policy.max_checkpoints = 1;
    Job job(cfg);
    job.run([sink](Process& p) {
      p.complete_registration();
      p.potential_checkpoint();  // everyone checkpoints; all start logging
      // While logging, a collective's result must be logged.
      int v = p.rank() + 1;
      int sum = 0;
      p.allreduce(util::as_bytes(v), {reinterpret_cast<std::byte*>(&sum), 4},
                  simmpi::Datatype::kInt32, simmpi::Op::kSum);
      EXPECT_EQ(sum, 6);
      sink->put(p.rank(), p.stats());
    });
    all_logged = true;
    for (const auto& s : sink->by_rank) {
      if (s.logged_collectives < 1u) all_logged = false;
    }
  }
  EXPECT_TRUE(all_logged)
      << "allreduce never landed inside an open logging window";
}

TEST(Protocol, BarrierForcesLaggardCheckpoint) {
  auto sink = std::make_shared<StatsSink>();
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.policy = CheckpointPolicy::every(1);
  cfg.policy.max_checkpoints = 1;
  Job job(cfg);
  job.run([sink](Process& p) {
    p.complete_registration();
    if (p.rank() == 0) {
      p.potential_checkpoint();  // initiator checkpoints -> epoch 1
      EXPECT_EQ(p.epoch(), 1);
    }
    // Rank 1 reaches the barrier still in epoch 0: the pre-barrier epoch
    // agreement must force its local checkpoint so the barrier executes in
    // one epoch (Section 4.5).
    p.barrier();
    EXPECT_EQ(p.epoch(), 1);
    sink->put(p.rank(), p.stats());
  });
  EXPECT_EQ(sink->by_rank[1].checkpoints_taken, 1u);
}

TEST(Protocol, StatsCountControlMessages) {
  // The stats snapshot is taken at the end of each rank's app body, which
  // can race ahead of the control traffic (rank 1 may only process
  // pleaseCheckpoint inside shutdown(), after its snapshot). Retry until
  // the snapshot catches the flow.
  bool both_counted = false;
  for (int attempt = 0; attempt < 25 && !both_counted; ++attempt) {
    auto sink = std::make_shared<StatsSink>();
    JobConfig cfg;
    cfg.ranks = 2;
    cfg.policy = CheckpointPolicy::every(1);
    cfg.policy.max_checkpoints = 1;
    Job job(cfg);
    job.run([sink](Process& p) {
      p.complete_registration();
      p.potential_checkpoint();
      sink->put(p.rank(), p.stats());
    });
    // At least pleaseCheckpoint + mySendCount + ready/stop/stopped flowed.
    both_counted = sink->by_rank[0].control_messages > 0u &&
                   sink->by_rank[1].control_messages > 0u;
  }
  EXPECT_TRUE(both_counted)
      << "control messages never landed before the stats snapshots";
}

TEST(Protocol, CheckpointBytesAccounted) {
  auto sink = std::make_shared<StatsSink>();
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.policy = CheckpointPolicy::every(1);
  cfg.policy.max_checkpoints = 1;
  Job job(cfg);
  job.run([sink](Process& p) {
    std::vector<double> state(1000, 1.5);
    p.register_state("state", state.data(), state.size() * sizeof(double));
    p.complete_registration();
    p.potential_checkpoint();
    sink->put(p.rank(), p.stats());
  });
  EXPECT_GT(sink->by_rank[0].checkpoint_bytes, 8000u)
      << "checkpoint must contain the 8000-byte registered state";
}

TEST(Protocol, NoAppStateLevelSkipsAppSections) {
  auto sink = std::make_shared<StatsSink>();
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.level = InstrumentLevel::kNoAppState;
  cfg.policy = CheckpointPolicy::every(1);
  cfg.policy.max_checkpoints = 1;
  Job job(cfg);
  auto report = job.run([sink](Process& p) {
    std::vector<double> state(1000, 1.5);
    p.register_state("state", state.data(), state.size() * sizeof(double));
    p.complete_registration();
    p.potential_checkpoint();
    sink->put(p.rank(), p.stats());
  });
  ASSERT_TRUE(report.last_committed_epoch.has_value());
  EXPECT_LT(sink->by_rank[0].checkpoint_bytes, 8000u)
      << "kNoAppState checkpoints must exclude application state";
}

}  // namespace
}  // namespace c3::core
