// Copy-on-write capture (StoreOptions::cow): the checkpoint site snapshots
// only the chunks that must travel inline and returns immediately; writer
// lanes compress/serialize behind the application and a committer thread
// finalizes each epoch once its blobs have drained.
//
// Covered here:
//   1. capture produces the *same stored bytes* as the classic
//      serialize-then-encode path, epoch by epoch (so the read /
//      reconstruct / replica paths need no COW awareness);
//   2. caller-supplied write-tracking CRCs round-trip identically;
//   3. deferred commits settle: committed_epoch() observes the epoch once
//      the lanes drain, and the store quiesces;
//   4. the crash matrix: a rank dies after capture returned but before the
//      lanes drained (with and without its backend holding wiped) -- the
//      recovery point is the previous fully drained epoch, byte-identical;
//   5. whole-job kill-mid-flight with cow on: clean and recovered runs
//      produce identical results, including with write tracking driving
//      the capture-time diff.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ckptstore/delta.hpp"
#include "ckptstore/store.hpp"
#include "core/job.hpp"
#include "core/process.hpp"
#include "replica/replicated_storage.hpp"
#include "statesave/checkpoint.hpp"
#include "util/crc32.hpp"
#include "util/fault_injection.hpp"

#include "ckpt_test_util.hpp"

namespace c3 {
namespace {

using ckptstore::CaptureSection;
using ckptstore::CheckpointStore;
using ckptstore::StoreOptions;
using testutil::random_bytes;
using util::BlobKey;
using util::Bytes;

constexpr int kRanks = 4;
constexpr std::size_t kHeapBytes = 32 * 1024;

/// Deterministic per-(epoch, rank) heap: stable pseudo-random tail, dirty
/// 2 KiB prefix -- consecutive epochs delta on the tail chunks.
Bytes heap_bytes(int epoch, int rank) {
  Bytes heap = random_bytes(kHeapBytes, 1000 + static_cast<unsigned>(rank));
  for (std::size_t i = 0; i < 2048; ++i) {
    heap[i] = static_cast<std::byte>(epoch * 131 + rank * 17 +
                                     static_cast<int>(i));
  }
  return heap;
}

Bytes proto_bytes(int epoch, int rank) {
  util::Writer w;
  w.put<std::int32_t>(epoch);
  w.put<std::int32_t>(rank);
  return w.take();
}

/// What the classic path would write: the canonical v1 container, which is
/// also what get() reconstructs for a captured blob.
Bytes expected_blob(int epoch, int rank) {
  statesave::CheckpointBuilder b;
  b.add_section("heap", heap_bytes(epoch, rank));
  b.add_section("protocol", proto_bytes(epoch, rank));
  return b.finish();
}

StoreOptions cow_opts() {
  StoreOptions o;
  o.async = true;
  o.cow = true;
  o.writer_lanes = kRanks;
  o.queue_max_blobs = 16;
  return o;
}

/// Capture sections in container (name-sorted) order over caller-owned
/// buffers; `heap`/`proto` must outlive the put_capture() call.
std::vector<CaptureSection> make_capture(const Bytes& heap,
                                         const Bytes& proto) {
  std::vector<CaptureSection> caps;
  caps.push_back({"heap", heap, {}});
  caps.push_back({"protocol", proto, {}});
  return caps;
}

TEST(CowCapture, StoredBytesMatchClassicPathExactly) {
  // Same epochs through a classic synchronous store and a COW store over
  // separate backends: every stored blob and the commit marker must be
  // byte-identical, proving the capture-time ref-vs-inline decision and
  // the lane-side serialization reproduce encode_blob() exactly.
  auto classic_inner = std::make_shared<util::MemoryStorage>();
  auto cow_inner = std::make_shared<util::MemoryStorage>();
  StoreOptions classic_o;
  classic_o.async = false;
  CheckpointStore classic(classic_inner, classic_o);
  CheckpointStore cow(cow_inner, cow_opts());

  for (int epoch = 1; epoch <= 3; ++epoch) {
    for (int rank = 0; rank < kRanks; ++rank) {
      classic.put({epoch, rank, "state"}, expected_blob(epoch, rank));
      const Bytes heap = heap_bytes(epoch, rank);
      const Bytes proto = proto_bytes(epoch, rank);
      cow.put_capture({epoch, rank, "state"}, make_capture(heap, proto));
    }
    classic.commit(epoch);
    cow.commit(epoch);
  }
  ASSERT_EQ(cow.committed_epoch(), 3);  // settles the deferred commits

  for (int epoch = 1; epoch <= 3; ++epoch) {
    for (int rank = 0; rank < kRanks; ++rank) {
      const BlobKey key{epoch, rank, "state"};
      const auto a = classic_inner->get(key);
      const auto b = cow_inner->get(key);
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(*a, *b) << "epoch " << epoch << " rank " << rank;
      // And the COW store reconstructs the canonical container.
      auto back = cow.get(key);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, expected_blob(epoch, rank));
    }
  }
  const auto stats = cow.storage_stats();
  EXPECT_GT(stats.ref_chunks, 0u)
      << "capture never emitted a delta reference; the prediff is vacuous";
  EXPECT_GT(stats.delta_hit_rate(), 0.5);
  EXPECT_LT(stats.stored_bytes, stats.raw_bytes);
}

TEST(CowCapture, CallerSuppliedCrcsRoundTrip) {
  // A write-tracking caller hands per-chunk CRCs instead of having the
  // store hash every byte; the stored result must be indistinguishable.
  auto inner = std::make_shared<util::MemoryStorage>();
  CheckpointStore store(inner, cow_opts());
  const std::size_t cs = store.chunk_size();
  for (int epoch = 1; epoch <= 2; ++epoch) {
    const Bytes heap = heap_bytes(epoch, 0);
    const Bytes proto = proto_bytes(epoch, 0);
    std::vector<std::uint32_t> crcs;
    for (std::size_t c = 0; c < ckptstore::chunk_count(heap.size(), cs);
         ++c) {
      crcs.push_back(util::crc32(
          std::span(heap).subspan(c * cs,
                                  ckptstore::chunk_len(heap.size(), cs, c))));
    }
    std::vector<CaptureSection> caps;
    caps.push_back({"heap", heap, std::move(crcs)});
    caps.push_back({"protocol", proto, {}});
    store.put_capture({epoch, 0, "state"}, std::move(caps));
    store.commit(epoch);
  }
  ASSERT_EQ(store.committed_epoch(), 2);
  for (int epoch = 1; epoch <= 2; ++epoch) {
    auto back = store.get({epoch, 0, "state"});
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, expected_blob(epoch, 0));
  }
  EXPECT_GT(store.storage_stats().ref_chunks, 0u);
}

TEST(CowCapture, DeferredCommitSettlesAndQuiesces) {
  auto inner = std::make_shared<util::MemoryStorage>();
  CheckpointStore store(inner, cow_opts());
  for (int rank = 0; rank < kRanks; ++rank) {
    const Bytes heap = heap_bytes(1, rank);
    const Bytes proto = proto_bytes(1, rank);
    store.put_capture({1, rank, "state"}, make_capture(heap, proto));
  }
  store.commit(1);  // returns with the commit possibly still in flight
  // committed_epoch() is the settle point: afterwards the marker is
  // durable and the store is quiescent on every rank.
  ASSERT_EQ(store.committed_epoch(), 1);
  EXPECT_TRUE(store.commits_settled());
  for (int rank = 0; rank < kRanks; ++rank) {
    EXPECT_TRUE(store.rank_quiescent(rank)) << "rank " << rank;
  }
  ASSERT_EQ(inner->committed_epoch(), 1)
      << "the deferred commit never reached the backend";
}

// ------------------------------------------------------- crash matrix
//
// Epoch 1 fully drains and commits. Epoch 2's captures all return to the
// "application", then the process dies while the lanes are still draining
// (a backend put fails, or the commit-marker write itself fails). The
// recovery point must be epoch 1, byte-identical, and the re-executed
// epoch 2 must commit cleanly -- with and without the victim's backend
// holding wiped (the diskless-replica failure mode).

struct CowScenario {
  std::string name;
  util::FaultPlan plan;
  bool reopen = false;  ///< destroy + reopen the store ("process died")
};

std::vector<CowScenario> cow_scenarios() {
  std::vector<CowScenario> cells;
  for (const int puts : {0, 2}) {
    CowScenario s;
    s.name = "lane-put-fails-after-" + std::to_string(puts);
    s.plan.fail_after_puts = puts;
    cells.push_back(s);
    s.name += "-reopen";
    s.reopen = true;
    cells.push_back(s);
  }
  {
    CowScenario s;
    s.name = "commit-marker-fails";
    s.plan.fail_on_commit = true;
    cells.push_back(s);
    s.name += "-reopen";
    s.reopen = true;
    cells.push_back(s);
  }
  return cells;
}

TEST(CowFaultMatrix, EpochInFlightAtCrashFallsBackToDrainedEpoch) {
  for (const CowScenario& sc : cow_scenarios()) {
    SCOPED_TRACE(sc.name);
    auto inner = std::make_shared<util::MemoryStorage>();
    auto faulty = std::make_shared<util::FaultInjectingStorage>(inner);
    auto store = std::make_unique<CheckpointStore>(faulty, cow_opts());

    for (int r = 0; r < kRanks; ++r) {
      const Bytes heap = heap_bytes(1, r);
      const Bytes proto = proto_bytes(1, r);
      store->put_capture({1, r, "state"}, make_capture(heap, proto));
    }
    store->commit(1);
    ASSERT_EQ(store->committed_epoch(), 1);

    faulty->arm(sc.plan);
    for (int r = 0; r < kRanks; ++r) {
      const Bytes heap = heap_bytes(2, r);
      const Bytes proto = proto_bytes(2, r);
      // Capture returns to the app; the fault fires later, on a lane.
      store->put_capture({2, r, "state"}, make_capture(heap, proto));
    }
    store->commit(2);

    if (sc.reopen) {
      // The process dies with the epoch in flight: the dtor's committer
      // refuses the failed epoch, so the marker never moves.
      store.reset();
      faulty->disarm();
      store = std::make_unique<CheckpointStore>(faulty, cow_opts());
    } else {
      // In-process recovery (core::Job's path): cancel the deferred
      // commit, drain the lanes, swallow the injected write error.
      store->abort_in_flight();
      faulty->disarm();
    }

    const auto committed = store->committed_epoch();
    ASSERT_TRUE(committed.has_value());
    ASSERT_EQ(*committed, 1)
        << "an epoch whose lanes never drained became the recovery point";
    for (int r = 0; r < kRanks; ++r) {
      auto back = store->get({1, r, "state"});
      ASSERT_TRUE(back.has_value()) << "rank " << r;
      ASSERT_EQ(*back, expected_blob(1, r)) << "rank " << r;
    }

    // Re-execution: abandon the aborted epoch, capture it again, commit.
    store->drop_epoch(2);
    for (int r = 0; r < kRanks; ++r) {
      EXPECT_FALSE(inner->get({2, r, "state"}).has_value()) << "rank " << r;
    }
    for (int r = 0; r < kRanks; ++r) {
      const Bytes heap = heap_bytes(2, r);
      const Bytes proto = proto_bytes(2, r);
      store->put_capture({2, r, "state"}, make_capture(heap, proto));
    }
    store->commit(2);
    ASSERT_EQ(store->committed_epoch(), 2);
    for (int r = 0; r < kRanks; ++r) {
      auto back = store->get({2, r, "state"});
      ASSERT_TRUE(back.has_value()) << "rank " << r;
      ASSERT_EQ(*back, expected_blob(2, r)) << "rank " << r;
    }
  }
}

TEST(CowFaultMatrix, KillAndWipeMidFlightRecoversFromParity) {
  // The crash also takes the victim's backend holding (node-local disk
  // dies with the node); the erasure-coded tier under the COW store must
  // rebuild the drained epoch byte-identically.
  auto inner = std::make_shared<util::MemoryStorage>();
  auto faulty = std::make_shared<util::FaultInjectingStorage>(inner);
  replica::ReplicaConfig rc;
  rc.group_size = 2;
  rc.parity_k = 1;
  auto tier =
      std::make_shared<replica::ReplicatedStorage>(faulty, kRanks, rc);
  auto store = std::make_unique<CheckpointStore>(tier, cow_opts());

  for (int r = 0; r < kRanks; ++r) {
    const Bytes heap = heap_bytes(1, r);
    const Bytes proto = proto_bytes(1, r);
    store->put_capture({1, r, "state"}, make_capture(heap, proto));
  }
  store->commit(1);
  ASSERT_EQ(store->committed_epoch(), 1);

  util::FaultPlan plan;
  plan.fail_after_puts = 2;
  plan.wipe_rank_on_fault = 1;
  faulty->arm(plan);
  for (int r = 0; r < kRanks; ++r) {
    const Bytes heap = heap_bytes(2, r);
    const Bytes proto = proto_bytes(2, r);
    store->put_capture({2, r, "state"}, make_capture(heap, proto));
  }
  store->commit(2);
  store.reset();  // process dies; the failed epoch's commit is refused
  faulty->disarm();

  ASSERT_FALSE(inner->get({1, 1, "state"}).has_value())
      << "the wipe never reached the backend";
  auto tier2 =
      std::make_shared<replica::ReplicatedStorage>(faulty, kRanks, rc);
  store = std::make_unique<CheckpointStore>(tier2, cow_opts());
  const auto committed = store->committed_epoch();
  ASSERT_TRUE(committed.has_value());
  ASSERT_EQ(*committed, 1);
  for (int r = 0; r < kRanks; ++r) {
    auto back = store->get({1, r, "state"});
    ASSERT_TRUE(back.has_value()) << "rank " << r;
    ASSERT_EQ(*back, expected_blob(1, r)) << "rank " << r;
  }
  EXPECT_GE(tier2->storage_stats().reconstruct_reads, 1u);

  store->drop_epoch(2);
  for (int r = 0; r < kRanks; ++r) {
    const Bytes heap = heap_bytes(2, r);
    const Bytes proto = proto_bytes(2, r);
    store->put_capture({2, r, "state"}, make_capture(heap, proto));
  }
  store->commit(2);
  ASSERT_EQ(store->committed_epoch(), 2);
}

// -------------------------------------------------- whole-job recovery

/// Thread-safe per-rank result collector (recovery_test idiom).
struct ResultSink {
  std::mutex mu;
  std::vector<long long> values;
  void put(int rank, long long v) {
    std::lock_guard lock(mu);
    if (values.size() <= static_cast<std::size_t>(rank)) {
      values.resize(static_cast<std::size_t>(rank) + 1);
    }
    values[static_cast<std::size_t>(rank)] = v;
  }
};

void cow_ring_app(core::Process& p, std::shared_ptr<ResultSink> sink,
                  int iters) {
  long long acc = p.rank() + 1;
  int iter = 0;
  // A buffer big enough to span several chunks, mutated through the
  // write-tracking contract: every write is reported, so capture-time
  // CRCs of clean chunks are reused instead of re-hashed.
  std::vector<std::byte> buf(16 * 1024);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((i * 7 + p.rank()) & 0xFF);
  }
  p.register_value("acc", acc);
  p.register_value("iter", iter);
  p.register_state("buf", buf.data(), buf.size());
  p.complete_registration();
  const std::size_t track = p.enable_write_tracking("buf");
  const int right = (p.rank() + 1) % p.nranks();
  const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
  while (iter < iters) {
    p.send_value(acc, right, 0);
    const long long got = p.recv_value<long long>(left, 0);
    // Unsigned mix: the fold is a wraparound hash, and signed overflow
    // would be UB.
    acc = static_cast<long long>(static_cast<unsigned long long>(acc) * 3u +
                                 static_cast<unsigned long long>(got));
    // Dirty a small, iteration-dependent window and report it; the rest
    // of the buffer stays clean -> delta references at capture time.
    const std::size_t off = (static_cast<std::size_t>(iter) % 4) * 64;
    for (std::size_t i = 0; i < 32; ++i) {
      buf[off + i] =
          static_cast<std::byte>(static_cast<unsigned long long>(acc) + i);
    }
    p.notify_write(track, off, 32);
    ++iter;
    p.potential_checkpoint();
  }
  unsigned long long fold = static_cast<unsigned long long>(acc);
  for (const std::byte b : buf) {
    fold = fold * 31u + std::to_integer<unsigned>(b);
  }
  sink->put(p.rank(), static_cast<long long>(fold));
}

std::vector<long long> run_cow_ring(int ranks, int iters,
                                    std::optional<net::FailureSpec> failure,
                                    bool wipe_failed_rank,
                                    util::StorageStats* stats = nullptr) {
  auto sink = std::make_shared<ResultSink>();
  core::JobConfig cfg;
  cfg.ranks = ranks;
  cfg.policy = core::CheckpointPolicy::every(3);
  cfg.ckpt.cow = true;
  cfg.failure = failure;
  if (wipe_failed_rank) {
    cfg.replica_group_size = 2;
    cfg.replica_parity_k = 1;
    cfg.wipe_failed_rank_storage = true;
  }
  core::Job job(cfg);
  auto report =
      job.run([&](core::Process& p) { cow_ring_app(p, sink, iters); });
  if (failure) {
    EXPECT_GE(report.failures, 1) << "the injected failure never fired";
  }
  if (stats) *stats = job.storage_stats();
  return sink->values;
}

TEST(CowRecovery, KillMidFlightRecoversByteIdentical) {
  // How many checkpoint rounds complete before shutdown is timing-
  // dependent (the deferred commits race the app's exit), so the oracle
  // is the recovery contract itself -- identical results -- plus capture
  // stats from a run long enough that several epochs must have committed.
  util::StorageStats clean_stats;
  const auto clean =
      run_cow_ring(4, 30, std::nullopt, /*wipe=*/false, &clean_stats);
  EXPECT_GT(clean_stats.ref_chunks, 0u)
      << "job-level capture emitted no references; cow path not exercised";
  const auto recovered = run_cow_ring(
      4, 30, net::FailureSpec{.victim_rank = 2, .trigger_events = 60},
      /*wipe=*/false);
  EXPECT_EQ(clean, recovered);
}

TEST(CowRecovery, KillAndWipeMidFlightRecoversByteIdentical) {
  const auto clean = run_cow_ring(4, 30, std::nullopt, /*wipe=*/true);
  const auto recovered = run_cow_ring(
      4, 30, net::FailureSpec{.victim_rank = 1, .trigger_events = 60},
      /*wipe=*/true);
  EXPECT_EQ(clean, recovered);
}

class CowFailurePoints : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CowFailurePoints, AnyFailurePointRecoversExactly) {
  const auto clean = run_cow_ring(4, 30, std::nullopt, /*wipe=*/false);
  const auto recovered = run_cow_ring(
      4, 30,
      net::FailureSpec{.victim_rank = 1, .trigger_events = GetParam()},
      /*wipe=*/false);
  EXPECT_EQ(clean, recovered)
      << "divergence after failure at event " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TriggerSweep, CowFailurePoints,
                         ::testing::Values(1ull, 17ull, 45ull, 80ull));

}  // namespace
}  // namespace c3
