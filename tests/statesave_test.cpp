// State-saving machinery: Position Stack, VDS, global registry, heap arena
// with HOS, checkpoint container (paper Section 5.1).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "statesave/checkpoint.hpp"
#include "statesave/globals.hpp"
#include "statesave/heap.hpp"
#include "statesave/position_stack.hpp"
#include "statesave/save_context.hpp"
#include "statesave/vds.hpp"

namespace c3::statesave {
namespace {

// ----------------------------------------------------------- PositionStack

TEST(PositionStack, PushPopTracksDepth) {
  PositionStack ps;
  EXPECT_TRUE(ps.empty());
  ps.push(1);
  ps.push(2);
  EXPECT_EQ(ps.depth(), 2u);
  ps.pop();
  EXPECT_EQ(ps.depth(), 1u);
}

TEST(PositionStack, PopEmptyThrows) {
  PositionStack ps;
  EXPECT_THROW(ps.pop(), util::UsageError);
}

TEST(PositionStack, RestoreWalksOutermostFirst) {
  PositionStack ps;
  ps.push(10);  // main's call site
  ps.push(20);  // nested call site
  ps.push(30);  // the potentialCheckpoint label
  util::Writer w;
  ps.save(w);

  PositionStack restored;
  util::Reader r(w.bytes());
  restored.load(r);
  restored.begin_restore();
  EXPECT_TRUE(restored.restoring());
  EXPECT_EQ(restored.restore_next(), 10);
  EXPECT_TRUE(restored.restoring());
  EXPECT_EQ(restored.restore_next(), 20);
  EXPECT_EQ(restored.restore_next(), 30);
  EXPECT_FALSE(restored.restoring()) << "restore ends at the innermost label";
}

TEST(PositionStack, EmptyStackDoesNotEnterRestore) {
  PositionStack ps;
  ps.begin_restore();
  EXPECT_FALSE(ps.restoring());
}

TEST(PositionStack, MutationWhileRestoringThrows) {
  PositionStack ps;
  ps.push(1);
  ps.push(2);
  util::Writer w;
  ps.save(w);
  PositionStack restored;
  util::Reader r(w.bytes());
  restored.load(r);
  restored.begin_restore();
  EXPECT_THROW(restored.push(3), util::UsageError);
  EXPECT_THROW(restored.pop(), util::UsageError);
}

// -------------------------------------------------------------------- VDS

TEST(Vds, SaveRestoreValuesInStackOrder) {
  VariableDescriptorStack vds;
  int a = 42;
  double b = 2.5;
  char buf[8] = "hello";
  vds.push(&a, sizeof(a));
  vds.push(&b, sizeof(b));
  vds.push(buf, sizeof(buf));
  EXPECT_EQ(vds.payload_bytes(), sizeof(a) + sizeof(b) + sizeof(buf));

  util::Writer w;
  vds.save_values(w);

  a = 0;
  b = 0;
  std::memset(buf, 0, sizeof(buf));
  util::Reader r(w.bytes());
  vds.restore_values(r);
  EXPECT_EQ(a, 42);
  EXPECT_EQ(b, 2.5);
  EXPECT_STREQ(buf, "hello");
}

TEST(Vds, ShapeMismatchThrows) {
  VariableDescriptorStack vds;
  int a = 1;
  vds.push(&a, sizeof(a));
  util::Writer w;
  vds.save_values(w);
  vds.pop();  // restored stack has different shape
  util::Reader r(w.bytes());
  EXPECT_THROW(vds.restore_values(r), util::CorruptionError);
}

TEST(Vds, PopPastBottomThrows) {
  VariableDescriptorStack vds;
  int a = 1;
  vds.push(&a, sizeof(a));
  EXPECT_THROW(vds.pop(2), util::UsageError);
}

TEST(Vds, ScopedVarPairsPushPop) {
  VariableDescriptorStack vds;
  {
    int x = 7;
    ScopedVar guard(vds, x);
    EXPECT_EQ(vds.depth(), 1u);
    {
      double y = 1.5;
      ScopedVar inner(vds, y);
      EXPECT_EQ(vds.depth(), 2u);
    }
    EXPECT_EQ(vds.depth(), 1u);
  }
  EXPECT_EQ(vds.depth(), 0u);
}

// ---------------------------------------------------------- GlobalRegistry

TEST(Globals, SaveRestoreByName) {
  GlobalRegistry reg;
  int counter = 5;
  double coeffs[3] = {1, 2, 3};
  reg.register_global("counter", counter);
  reg.register_global("coeffs", coeffs, sizeof(coeffs));
  util::Writer w;
  reg.save_values(w);

  counter = 0;
  coeffs[0] = coeffs[1] = coeffs[2] = 0;
  util::Reader r(w.bytes());
  reg.restore_values(r);
  EXPECT_EQ(counter, 5);
  EXPECT_EQ(coeffs[2], 3);
}

TEST(Globals, DuplicateNameThrows) {
  GlobalRegistry reg;
  int a = 0, b = 0;
  reg.register_global("x", a);
  EXPECT_THROW(reg.register_global("x", b), util::UsageError);
}

TEST(Globals, UnknownGlobalInCheckpointThrows) {
  GlobalRegistry writer_side;
  int v = 1;
  writer_side.register_global("old_name", v);
  util::Writer w;
  writer_side.save_values(w);

  GlobalRegistry reader_side;
  int u = 0;
  reader_side.register_global("new_name", u);
  util::Reader r(w.bytes());
  EXPECT_THROW(reader_side.restore_values(r), util::CorruptionError);
}

// ---------------------------------------------------------------- HeapArena

TEST(Heap, AllocFreeReuse) {
  HeapArena arena(4096);
  void* a = arena.alloc(100);
  void* b = arena.alloc(200);
  EXPECT_NE(a, b);
  EXPECT_TRUE(arena.contains(a));
  EXPECT_EQ(arena.live_objects(), 2u);
  arena.free(a);
  EXPECT_EQ(arena.live_objects(), 1u);
  // First-fit should reuse the freed block for an equal-size request.
  void* c = arena.alloc(100);
  EXPECT_EQ(c, a);
}

TEST(Heap, CoalescingAllowsFullReuse) {
  HeapArena arena(1024);
  void* a = arena.alloc(256);
  void* b = arena.alloc(256);
  void* c = arena.alloc(256);
  arena.free(b);
  arena.free(a);  // coalesce left neighbour
  arena.free(c);  // coalesce both sides -> whole arena free again
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  void* big = arena.alloc(1024);
  EXPECT_NE(big, nullptr);
}

TEST(Heap, ExhaustionThrowsBadAlloc) {
  HeapArena arena(256);
  (void)arena.alloc(200);
  EXPECT_THROW((void)arena.alloc(200), std::bad_alloc);
}

TEST(Heap, FreeOfForeignPointerThrows) {
  HeapArena arena(256);
  int x;
  EXPECT_THROW(arena.free(&x), util::UsageError);
}

TEST(Heap, DoubleFreeThrows) {
  HeapArena arena(256);
  void* p = arena.alloc(16);
  arena.free(p);
  EXPECT_THROW(arena.free(p), util::UsageError);
}

TEST(Heap, SaveLoadRestoresObjectsAtSameAddresses) {
  HeapArena arena(8192);
  auto* xs = arena.alloc_array<int>(10);
  auto* ys = arena.alloc_array<double>(5);
  for (int i = 0; i < 10; ++i) xs[i] = i * i;
  for (int i = 0; i < 5; ++i) ys[i] = i + 0.5;
  // A raw pointer stored *inside* a heap object must survive recovery
  // (Section 5.1.4: pointers are saved as ordinary data).
  struct Node {
    int* data;
    double* other;
  };
  auto* node = static_cast<Node*>(arena.alloc(sizeof(Node)));
  node->data = xs;
  node->other = ys;

  util::Writer w;
  arena.save(w);

  // Trash everything, then restore.
  for (int i = 0; i < 10; ++i) xs[i] = -1;
  node->data = nullptr;
  arena.free(ys);
  util::Reader r(w.bytes());
  arena.load(r);

  EXPECT_EQ(arena.live_objects(), 3u);
  EXPECT_EQ(xs[7], 49);
  EXPECT_EQ(node->data, xs) << "pointer fidelity lost";
  EXPECT_EQ(node->other[4], 4.5);
}

TEST(Heap, LoadRecomputesFreeList) {
  HeapArena arena(4096);
  void* a = arena.alloc(512);
  (void)arena.alloc(512);
  arena.free(a);  // hole at the front
  util::Writer w;
  arena.save(w);
  util::Reader r(w.bytes());
  arena.load(r);
  // The hole must be allocatable again.
  void* c = arena.alloc(512);
  EXPECT_EQ(c, a);
}

TEST(Heap, AllocationsAreAligned) {
  HeapArena arena(1024);
  for (std::size_t size : {1u, 3u, 17u, 31u}) {
    void* p = arena.alloc(size);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
  }
}

// --------------------------------------------------------------- Checkpoint

TEST(Checkpoint, BuildAndReadSections) {
  CheckpointBuilder b;
  b.add_section("alpha", util::Bytes(10, std::byte{1}));
  b.add_section("beta", util::Bytes(20, std::byte{2}));
  const auto blob = b.finish();

  CheckpointView view(blob);
  EXPECT_EQ(view.section_count(), 2u);
  ASSERT_TRUE(view.section("alpha").has_value());
  EXPECT_EQ(view.section("alpha")->size(), 10u);
  EXPECT_FALSE(view.section("gamma").has_value());
  EXPECT_THROW(view.require_section("gamma"), util::CorruptionError);
}

TEST(Checkpoint, DuplicateSectionThrows) {
  CheckpointBuilder b;
  b.add_section("s", {});
  EXPECT_THROW(b.add_section("s", {}), util::UsageError);
}

TEST(Checkpoint, CorruptionDetectedByCrc) {
  CheckpointBuilder b;
  b.add_section("data", util::Bytes(100, std::byte{7}));
  auto blob = b.finish();
  blob[blob.size() - 5] ^= std::byte{0xFF};  // flip a payload byte
  EXPECT_THROW(CheckpointView{blob}, util::CorruptionError);
}

TEST(Checkpoint, BadMagicThrows) {
  util::Bytes junk(64, std::byte{0});
  EXPECT_THROW(CheckpointView{junk}, util::CorruptionError);
}

// -------------------------------------------------------------- SaveContext

TEST(SaveContext, FullCycleWithHeap) {
  SaveContext ctx(4096);
  int stack_var = 11;
  ctx.vds().push(&stack_var, sizeof(stack_var));
  int global_var = 22;
  ctx.globals().register_global("g", global_var);
  auto* heap_obj = ctx.heap().alloc_array<int>(4);
  heap_obj[0] = 33;
  ctx.ps().push(1);
  ctx.ps().push(2);

  CheckpointBuilder b;
  ctx.capture(b);
  const auto blob = b.finish();

  // Mutate, then restore.
  stack_var = 0;
  global_var = 0;
  heap_obj[0] = 0;

  CheckpointView view(blob);
  ctx.begin_restore(view);
  EXPECT_TRUE(ctx.restore_pending());
  EXPECT_EQ(global_var, 22) << "globals restore in phase 1";
  EXPECT_EQ(heap_obj[0], 33) << "heap restores in phase 1";
  EXPECT_EQ(ctx.vds().depth(), 0u)
      << "a restarted process begins with an empty VDS";
  EXPECT_TRUE(ctx.ps().restoring());
  EXPECT_EQ(ctx.ps().restore_next(), 1);
  EXPECT_EQ(ctx.ps().restore_next(), 2);
  // Re-entering the instrumented function re-pushes its descriptors,
  // rebuilding the stack shape; then the saved values are copied back.
  ctx.vds().push(&stack_var, sizeof(stack_var));
  ctx.finish_restore();
  EXPECT_EQ(stack_var, 11) << "VDS values restore in phase 2";
  EXPECT_FALSE(ctx.restore_pending());
}

TEST(SaveContext, StateBytesAccounting) {
  SaveContext ctx(1024);
  EXPECT_EQ(ctx.state_bytes(), 0u);
  int v = 0;
  ctx.vds().push(&v, sizeof(v));
  (void)ctx.heap().alloc(64);
  EXPECT_EQ(ctx.state_bytes(), sizeof(v) + 64);
}

TEST(SaveContext, NoHeapConfigured) {
  SaveContext ctx;
  EXPECT_FALSE(ctx.has_heap());
  EXPECT_THROW(ctx.heap(), util::UsageError);
}

}  // namespace
}  // namespace c3::statesave
