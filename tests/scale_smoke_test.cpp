// 64-rank smoke coverage for the sharded fabric and the lock-split
// checkpoint metadata: one protocol round plus committed checkpoints at
// 64 ranks, an injected kill with exact recovery, and a 64-lane hammer on
// the per-lane delta index / global GC lock split. The point is not
// throughput (these sizes are tiny) but that the 64-way code paths --
// per-source shards, batched tree fan-out, per-lane metadata -- actually
// run concurrently and agree with the failure-free semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "ckptstore/store.hpp"
#include "core/job.hpp"
#include "core/process.hpp"
#include "util/stable_storage.hpp"

namespace c3::core {
namespace {

constexpr int kRanks = 64;

struct ResultSink {
  std::mutex mu;
  std::vector<long long> values;
  void put(int rank, long long v) {
    std::lock_guard lock(mu);
    if (values.size() <= static_cast<std::size_t>(rank)) {
      values.resize(static_cast<std::size_t>(rank) + 1);
    }
    values[static_cast<std::size_t>(rank)] = v;
  }
};

void ring_app(Process& p, std::shared_ptr<ResultSink> sink, int iters) {
  long long acc = p.rank() + 1;
  int iter = 0;
  p.register_value("acc", acc);
  p.register_value("iter", iter);
  p.complete_registration();
  const int right = (p.rank() + 1) % p.nranks();
  const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
  while (iter < iters) {
    p.send_value(acc, right, 0);
    // Unsigned mix: the fold is a wraparound hash, and signed overflow
    // would be UB.
    acc = static_cast<long long>(
        static_cast<unsigned long long>(acc) * 3u +
        static_cast<unsigned long long>(p.recv_value<long long>(left, 0)));
    ++iter;
    p.potential_checkpoint();
  }
  sink->put(p.rank(), acc);
}

std::vector<long long> run_ring(int iters,
                                std::optional<net::FailureSpec> failure,
                                JobReport* report_out = nullptr) {
  auto sink = std::make_shared<ResultSink>();
  JobConfig cfg;
  cfg.ranks = kRanks;
  cfg.policy = CheckpointPolicy::every(2);
  cfg.failure = failure;
  Job job(cfg);
  auto report = job.run([&](Process& p) { ring_app(p, sink, iters); });
  if (report_out) *report_out = report;
  return sink->values;
}

// One full protocol round at 64 ranks: a checkpoint epoch commits, the
// tree control plane keeps the initiator at O(log P) control sends, and
// every rank's result matches a 64-rank ring fold.
TEST(ScaleSmoke, SixtyFourRankRoundCommitsCheckpoint) {
  JobReport report;
  const auto vals = run_ring(/*iters=*/4, std::nullopt, &report);
  ASSERT_EQ(vals.size(), static_cast<std::size_t>(kRanks));
  ASSERT_TRUE(report.last_committed_epoch.has_value());
  EXPECT_GE(*report.last_committed_epoch, 1);
  EXPECT_EQ(report.failures, 0);
}

// Kill one of 64 ranks mid-run; recovery must reproduce the failure-free
// result exactly. Exercises abort fan-out (interrupt on 64 parked
// inboxes), rollback, and replay at a width the tier-1 suite previously
// never touched.
TEST(ScaleSmoke, SixtyFourRankKillRecoversExactly) {
  const auto clean = run_ring(/*iters=*/4, std::nullopt);
  JobReport report;
  const auto recovered = run_ring(
      /*iters=*/4,
      net::FailureSpec{.victim_rank = 37, .trigger_events = 7}, &report);
  EXPECT_GE(report.failures, 1) << "the injected failure never fired";
  EXPECT_EQ(clean, recovered);
}

}  // namespace
}  // namespace c3::core

namespace c3::ckptstore {
namespace {

// 64 writer lanes committing concurrently: every rank's delta index lives
// in its own metadata shard, the global GC lock only serializes cross-rank
// retention. The test hammers put/commit from 64 threads across three
// epochs with mostly-repeated content (so the delta path emits refs), then
// drops the oldest epoch and requires later reads to stay intact -- the
// ref registration done under the GC lock must have blocked the reclaim.
TEST(ScaleSmoke, SixtyFourLaneMetadataSplitSurvivesConcurrentCommits) {
  auto inner = std::make_shared<util::MemoryStorage>();
  StoreOptions opts;
  opts.async = true;
  opts.writer_lanes = 64;
  opts.chunk_size = 256;
  CheckpointStore store(inner, opts);
  ASSERT_EQ(store.lanes(), 64u);

  auto blob_for = [](int epoch, int rank) {
    util::Bytes b(2048);
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = std::byte{static_cast<unsigned char>(rank * 7 + i % 13)};
    }
    // Perturb one chunk per epoch so delta encoding has both refs and
    // fresh inline chunks to reason about.
    b[static_cast<std::size_t>(epoch) * 300 % b.size()] =
        std::byte{static_cast<unsigned char>(epoch)};
    return b;
  };

  for (int epoch = 1; epoch <= 3; ++epoch) {
    std::vector<std::thread> writers;
    writers.reserve(64);
    for (int rank = 0; rank < 64; ++rank) {
      writers.emplace_back([&, rank] {
        store.put({epoch, rank, "state"}, blob_for(epoch, rank));
      });
    }
    for (auto& t : writers) t.join();
    store.commit(epoch);
  }
  ASSERT_EQ(store.committed_epoch(), std::optional<int>(3));

  // Epoch-3 chunks reference earlier homes; dropping epoch 1 must defer
  // reclaim of any still-referenced blob rather than corrupt reads.
  store.drop_epoch(1);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(64);
  for (int rank = 0; rank < 64; ++rank) {
    readers.emplace_back([&, rank] {
      const auto got = store.get({3, rank, "state"});
      if (!got || *got != blob_for(3, rank)) mismatches.fetch_add(1);
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const auto stats = store.storage_stats();
  EXPECT_GT(stats.ref_chunks, 0u) << "delta path never emitted a ref";
}

}  // namespace
}  // namespace c3::ckptstore
