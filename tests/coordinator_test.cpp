// The tree-structured control plane: topology invariants, O(log P)
// initiator traffic, configurable initiator, and crash-recovery with a
// rank killed at every coordinator phase (interior tree node and leaf) at
// 8 ranks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/coordinator/control_plane.hpp"
#include "core/coordinator/tree.hpp"
#include "core/job.hpp"
#include "core/process.hpp"

namespace c3::core {
namespace {

using coordinator::BinomialTree;
using coordinator::ControlPlaneStats;
using coordinator::CoordinatorState;

int ceil_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

// ------------------------------------------------------------- topology

TEST(BinomialTree, ShapeInvariantsAcrossSizesAndRoots) {
  for (int size = 1; size <= 18; ++size) {
    for (int root : {0, 1, size / 2, size - 1}) {
      if (root < 0 || root >= size) continue;
      BinomialTree tree(size, root);
      ASSERT_EQ(tree.parent(root), -1);
      ASSERT_EQ(tree.subtree_size(root), size);
      int edges = 0;
      for (int r = 0; r < size; ++r) {
        if (r != root) {
          // Every non-root has a parent that lists it as a child.
          const int p = tree.parent(r);
          ASSERT_GE(p, 0);
          ASSERT_TRUE(tree.is_child(p, r)) << "size " << size << " rank " << r;
        }
        // Subtree size = 1 + sum of children's subtree sizes.
        int sub = 1;
        for (const int c : tree.children(r)) {
          ASSERT_EQ(tree.parent(c), r);
          sub += tree.subtree_size(c);
          edges++;
        }
        ASSERT_EQ(sub, tree.subtree_size(r)) << "size " << size << " rank " << r;
        // Fan-out is logarithmically bounded everywhere.
        ASSERT_LE(static_cast<int>(tree.children(r).size()), ceil_log2(size))
            << "size " << size << " rank " << r;
      }
      // Exactly one broadcast edge per non-root rank.
      ASSERT_EQ(edges, size - 1);
    }
  }
}

// ---------------------------------------------- O(log P) initiator cost

/// Collects per-rank control-plane stats at the end of each rank's main.
struct CoordSink {
  std::mutex mu;
  std::vector<ControlPlaneStats> by_rank;
  std::vector<ProcessStats> proc_by_rank;
  void put(int rank, const ControlPlaneStats& cs, const ProcessStats& ps) {
    std::lock_guard lock(mu);
    if (by_rank.size() <= static_cast<std::size_t>(rank)) {
      by_rank.resize(static_cast<std::size_t>(rank) + 1);
      proc_by_rank.resize(static_cast<std::size_t>(rank) + 1);
    }
    by_rank[static_cast<std::size_t>(rank)] = cs;
    proc_by_rank[static_cast<std::size_t>(rank)] = ps;
  }
};

TEST(ControlPlane, InitiatorTrafficIsLogarithmicAt16Ranks) {
  constexpr int kRanks = 16;
  auto sink = std::make_shared<CoordSink>();
  JobConfig cfg;
  cfg.ranks = kRanks;
  cfg.policy = CheckpointPolicy::every(1);
  cfg.policy.max_checkpoints = 1;
  Job job(cfg);
  job.run([sink](Process& p) {
    p.complete_registration();
    // Drive one full round to completion at every rank.
    while (p.epoch() < 1 || p.checkpoint_in_progress()) {
      p.potential_checkpoint();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    sink->put(p.rank(), p.coordinator_stats(), p.stats());
  });
  ASSERT_EQ(sink->by_rank.size(), static_cast<std::size_t>(kRanks));
  const auto& init = sink->by_rank[0];
  const auto bound = static_cast<std::uint64_t>(ceil_log2(kRanks)) + 1;
  // The acceptance bound: <= ceil(log2(P)) + 1 initiator messages per
  // phase at 16 ranks, vs P - 1 = 15 with the old flat fan-out.
  EXPECT_LE(init.please_sends, bound);
  EXPECT_LE(init.stop_sends, bound);
  EXPECT_LE(init.ready_recvs, bound);
  EXPECT_LE(init.stopped_recvs, bound);
  EXPECT_EQ(init.rounds_completed, 1u);
  // Every phase still reaches/collects every rank: tree-wide totals are
  // P - 1 messages per phase.
  std::uint64_t please = 0, ready = 0, stop = 0, stopped = 0;
  for (const auto& cs : sink->by_rank) {
    please += cs.please_sends;
    ready += cs.ready_sends;
    stop += cs.stop_sends;
    stopped += cs.stopped_sends;
  }
  EXPECT_EQ(please, static_cast<std::uint64_t>(kRanks - 1));
  EXPECT_EQ(stop, static_cast<std::uint64_t>(kRanks - 1));
  EXPECT_EQ(ready, static_cast<std::uint64_t>(kRanks - 1));
  EXPECT_EQ(stopped, static_cast<std::uint64_t>(kRanks - 1));
  // Steady-state commits never probed storage for detached markers.
  for (const auto& ps : sink->proc_by_rank) {
    EXPECT_EQ(ps.detached_probe_gets, 0u);
  }
}

// ------------------------------------------------- configurable initiator

/// Ring accumulation app (same shape as recovery_test's): deterministic
/// final state with cross-epoch traffic.
struct ResultSink {
  std::mutex mu;
  std::vector<long long> values;
  void put(int rank, long long v) {
    std::lock_guard lock(mu);
    if (values.size() <= static_cast<std::size_t>(rank)) {
      values.resize(static_cast<std::size_t>(rank) + 1);
    }
    values[static_cast<std::size_t>(rank)] = v;
  }
};

void ring_app(Process& p, std::shared_ptr<ResultSink> sink, int iters,
              int min_epochs) {
  long long acc = p.rank() + 1;
  int iter = 0;
  p.register_value("acc", acc);
  p.register_value("iter", iter);
  p.complete_registration();
  const int right = (p.rank() + 1) % p.nranks();
  const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
  while (iter < iters) {
    p.send_value(acc, right, 0);
    const long long got = p.recv_value<long long>(left, 0);
    // Unsigned mix: the fold is a wraparound hash, and signed overflow
    // would be UB.
    acc = static_cast<long long>(static_cast<unsigned long long>(acc) * 3u +
                                 static_cast<unsigned long long>(got));
    ++iter;
    p.potential_checkpoint();
  }
  // Keep the protocol running until `min_epochs` rounds completed: the
  // phase-kill tests need round 2 to provably exist. Pure coordination --
  // the ring result above is already fixed.
  while (p.epoch() < min_epochs || p.checkpoint_in_progress()) {
    p.potential_checkpoint();
    // Polite polling: spinning rank threads would otherwise time-slice
    // against the ranks doing real protocol work.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  sink->put(p.rank(), acc);
}

std::vector<long long> run_ring(JobConfig cfg, int iters,
                                JobReport* out = nullptr,
                                int min_epochs = 0) {
  auto sink = std::make_shared<ResultSink>();
  Job job(cfg);
  auto report =
      job.run([&](Process& p) { ring_app(p, sink, iters, min_epochs); });
  if (out) *out = report;
  return sink->values;
}

TEST(ControlPlane, NonZeroInitiatorCommitsCheckpoints) {
  JobConfig cfg;
  cfg.ranks = 5;
  cfg.initiator = 3;
  cfg.policy = CheckpointPolicy::every(3);
  JobReport report;
  const auto values = run_ring(cfg, 12, &report);
  ASSERT_TRUE(report.last_committed_epoch.has_value());
  EXPECT_GE(*report.last_committed_epoch, 1);
  // The initiator choice is pure coordination: results match a rank-0
  // initiator run exactly.
  JobConfig cfg0 = cfg;
  cfg0.initiator = 0;
  EXPECT_EQ(values, run_ring(cfg0, 12));
}

TEST(ControlPlane, NonZeroInitiatorSurvivesFailure) {
  JobConfig cfg;
  cfg.ranks = 4;
  cfg.initiator = 2;
  cfg.policy = CheckpointPolicy::every(3);
  const auto clean = run_ring(cfg, 12);
  JobConfig faulty = cfg;
  faulty.failure = net::FailureSpec{.victim_rank = 0, .trigger_events = 25};
  JobReport report;
  const auto recovered = run_ring(faulty, 12, &report);
  EXPECT_GE(report.executions, 2);
  EXPECT_EQ(clean, recovered);
}

TEST(ControlPlane, OutOfRangeInitiatorRejected) {
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.initiator = 2;
  Job job(cfg);
  EXPECT_THROW(job.run([](Process&) {}), util::UsageError);
}

// ------------------------------------- crash at every coordinator phase

/// victim rank x coordinator state to die in. Rank 4 is an interior tree
/// node at 8 ranks (children 5 and 6), rank 7 a leaf at maximum depth.
using PhaseKillParam = std::tuple<int, CoordinatorState>;

class PhaseKillTest : public ::testing::TestWithParam<PhaseKillParam> {};

TEST_P(PhaseKillTest, RecoveryLandsOnCommittedEpoch) {
  const auto [victim, state] = GetParam();
  constexpr int kRanks = 8;
  constexpr int kIters = 14;
  JobConfig cfg;
  cfg.ranks = kRanks;
  cfg.policy = CheckpointPolicy::every(2);
  constexpr int kMinEpochs = 3;  // round 2 provably exists at every rank
  const auto clean = run_ring(cfg, kIters, nullptr, kMinEpochs);

  // Kill the victim the second time it *enters* the target state: round 1
  // has then fully committed (rounds are serialized), so recovery must
  // land on a committed epoch >= 1 no matter which phase dies.
  auto entries = std::make_shared<std::atomic<int>>(0);
  JobConfig faulty = cfg;
  faulty.coordinator_probe = [entries, victim = victim,
                              state = state](int rank,
                                             CoordinatorState entered) {
    if (rank != victim || entered != state) return;
    if (entries->fetch_add(1) + 1 == 2) {
      throw util::StoppingFailure(rank);
    }
  };
  JobReport report;
  const auto recovered = run_ring(faulty, kIters, &report, kMinEpochs);
  EXPECT_GE(report.executions, 2) << "the phase kill never fired";
  EXPECT_TRUE(report.recovered);
  ASSERT_TRUE(report.last_committed_epoch.has_value());
  EXPECT_GE(*report.last_committed_epoch, 1);
  EXPECT_EQ(clean, recovered)
      << "divergence after killing rank " << victim << " at state "
      << coordinator::to_string(state);
}

INSTANTIATE_TEST_SUITE_P(
    InteriorAndLeaf, PhaseKillTest,
    ::testing::Combine(::testing::Values(4, 7),
                       ::testing::Values(CoordinatorState::kCheckpointPending,
                                         CoordinatorState::kLogging,
                                         CoordinatorState::kReadySent,
                                         CoordinatorState::kLogClosed,
                                         CoordinatorState::kIdle)),
    [](const ::testing::TestParamInfo<PhaseKillParam>& info) {
      std::string name = std::get<0>(info.param) == 4 ? "Interior" : "Leaf";
      name += "_";
      for (const char* c = coordinator::to_string(std::get<1>(info.param));
           *c; ++c) {
        if (*c != '-') name += *c;
      }
      return name;
    });

// Barrier-forced rounds under adversarial reordering: barriers make ranks
// open rounds before their pleaseCheckpoint relays arrive, and held-back
// relays can then straggle in during *later* rounds (they must be
// swallowed, not tripped over as invariant violations, and a stale
// stopLogging must never close the newer round's logging window).
TEST(ControlPlane, BarrierForcedRoundsSurviveAdversarialReordering) {
  // Ring with a barrier each iteration: the epoch-agreement rule forces
  // whoever lags the newest epoch to checkpoint at the barrier, ahead of
  // its pleaseCheckpoint relay.
  const auto barrier_ring = [](Process& p, std::shared_ptr<ResultSink> sink) {
    long long acc = p.rank() + 1;
    int iter = 0;
    p.register_value("acc", acc);
    p.register_value("iter", iter);
    p.complete_registration();
    const int right = (p.rank() + 1) % p.nranks();
    const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
    while (iter < 12) {
      p.send_value(acc, right, 0);
      acc = static_cast<long long>(
          static_cast<unsigned long long>(acc) * 3u +
          static_cast<unsigned long long>(p.recv_value<long long>(left, 0)));
      ++iter;
      p.barrier();
      p.potential_checkpoint();
    }
    sink->put(p.rank(), acc);
  };
  JobConfig cfg;
  cfg.ranks = 6;
  cfg.policy = CheckpointPolicy::every(2);
  auto clean_sink = std::make_shared<ResultSink>();
  Job(cfg).run([&](Process& p) { barrier_ring(p, clean_sink); });
  for (const std::uint64_t seed : {5ull, 29ull, 401ull}) {
    auto sink = std::make_shared<ResultSink>();
    JobConfig reordered = cfg;
    reordered.net.order = simmpi::NetConfig::Order::kRandomReorder;
    reordered.net.seed = seed;
    reordered.net.p_hold = 0.7;
    reordered.net.max_hold = 8;
    Job job(reordered);
    auto report = job.run([&](Process& p) { barrier_ring(p, sink); });
    ASSERT_TRUE(report.last_committed_epoch.has_value()) << "seed " << seed;
    // Deterministic result regardless of forcing/reordering.
    EXPECT_EQ(sink->values, clean_sink->values) << "seed " << seed;
  }
}

// The initiator itself dying mid-round is the hardest case: the round can
// never complete, and recovery must fall back to the last commit.
TEST(PhaseKill, InitiatorDiesAfterStartingRoundTwo) {
  constexpr int kRanks = 8;
  constexpr int kIters = 14;
  JobConfig cfg;
  cfg.ranks = kRanks;
  cfg.policy = CheckpointPolicy::every(2);
  constexpr int kMinEpochs = 3;
  const auto clean = run_ring(cfg, kIters, nullptr, kMinEpochs);
  auto entries = std::make_shared<std::atomic<int>>(0);
  JobConfig faulty = cfg;
  faulty.coordinator_probe = [entries](int rank, CoordinatorState entered) {
    if (rank != 0 || entered != CoordinatorState::kCheckpointPending) return;
    if (entries->fetch_add(1) + 1 == 2) throw util::StoppingFailure(rank);
  };
  JobReport report;
  const auto recovered = run_ring(faulty, kIters, &report, kMinEpochs);
  EXPECT_GE(report.executions, 2);
  ASSERT_TRUE(report.last_committed_epoch.has_value());
  EXPECT_GE(*report.last_committed_epoch, 1);
  EXPECT_EQ(clean, recovered);
}

}  // namespace
}  // namespace c3::core
