// Helpers shared by the checkpoint-store test suites.
#pragma once

#include "util/archive.hpp"
#include "util/rng.hpp"

namespace c3::testutil {

/// Deterministic pseudo-random bytes (incompressible test payloads).
inline util::Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  util::Bytes b(n);
  util::Rng rng(seed);
  for (auto& x : b) x = static_cast<std::byte>(rng.next_u64() & 0xFF);
  return b;
}

}  // namespace c3::testutil
