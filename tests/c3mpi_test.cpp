// The c3mpi interposition layer: typed MPI calls resolved through the
// per-rank binding onto the Process protocol layer -- handle tables,
// status/count conversion, probes, MPI_Wtime determinism, persistent
// communicators across recovery, and wildcard receives logged and replayed.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "c3mpi/binding.hpp"
#include "c3mpi/mpi.h"
#include "core/job.hpp"

namespace c3 {
namespace {

using core::CheckpointPolicy;
using core::Job;
using core::JobConfig;
using core::Process;

/// Deterministic protocol-anchored kill: throw a stopping failure when
/// `victim` enters kLogClosed for the `round`-th time. Round N in flight
/// implies round N-1 committed (the initiator opens a round only when the
/// previous one finished), so recovery from a committed checkpoint is
/// guaranteed -- unlike event-count triggers, whose relation to the commit
/// schedule depends on cross-rank scheduling.
void arm_log_closed_kill(JobConfig& cfg, int victim, int round) {
  auto entries = std::make_shared<std::atomic<int>>(0);
  cfg.coordinator_probe = [entries, victim, round](
                              int rank,
                              core::coordinator::CoordinatorState entered) {
    if (rank != victim ||
        entered != core::coordinator::CoordinatorState::kLogClosed) {
      return;
    }
    if (entries->fetch_add(1) + 1 == round) {
      throw util::StoppingFailure(rank);
    }
  };
}

// ------------------------------------------------------------- typed p2p

TEST(C3Mpi, TypedSendRecvStatusAndCounts) {
  JobConfig cfg;
  cfg.ranks = 2;
  Job job(cfg);
  job.run([&](Process& p) {
    c3mpi::MpiBinding mpi(p);
    p.complete_registration();
    int rank = -1, size = 0;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    EXPECT_EQ(rank, p.rank());
    EXPECT_EQ(size, 2);

    int tsize = 0;
    MPI_Type_size(MPI_DOUBLE, &tsize);
    EXPECT_EQ(tsize, 8);

    if (rank == 0) {
      const double payload[3] = {1.5, 2.5, 3.5};
      MPI_Send(payload, 3, MPI_DOUBLE, 1, 42, MPI_COMM_WORLD);
      // 5 raw bytes: MPI_Get_count as MPI_INT must be undefined.
      const char odd[5] = {1, 2, 3, 4, 5};
      MPI_Send(odd, 5, MPI_BYTE, 1, 43, MPI_COMM_WORLD);
    } else {
      double got[3] = {0, 0, 0};
      MPI_Status st;
      MPI_Recv(got, 3, MPI_DOUBLE, MPI_ANY_SOURCE, 42, MPI_COMM_WORLD, &st);
      EXPECT_EQ(st.MPI_SOURCE, 0);
      EXPECT_EQ(st.MPI_TAG, 42);
      int count = -1;
      MPI_Get_count(&st, MPI_DOUBLE, &count);
      EXPECT_EQ(count, 3);
      EXPECT_DOUBLE_EQ(got[2], 3.5);

      char odd[8];
      MPI_Recv(odd, 8, MPI_BYTE, 0, 43, MPI_COMM_WORLD, &st);
      MPI_Get_count(&st, MPI_BYTE, &count);
      EXPECT_EQ(count, 5);
      MPI_Get_count(&st, MPI_INT, &count);
      EXPECT_EQ(count, MPI_UNDEFINED);
    }
  });
}

TEST(C3Mpi, RequestHandlesWaitTestWaitall) {
  JobConfig cfg;
  cfg.ranks = 2;
  Job job(cfg);
  job.run([&](Process& p) {
    c3mpi::MpiBinding mpi(p);
    p.complete_registration();
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      long long vals[2] = {7, 9};
      MPI_Request reqs[2];
      MPI_Isend(&vals[0], 1, MPI_LONG_LONG, 1, 1, MPI_COMM_WORLD, &reqs[0]);
      MPI_Isend(&vals[1], 1, MPI_LONG_LONG, 1, 2, MPI_COMM_WORLD, &reqs[1]);
      MPI_Waitall(2, reqs, MPI_STATUSES_IGNORE);
      EXPECT_EQ(reqs[0], MPI_REQUEST_NULL);
      EXPECT_EQ(reqs[1], MPI_REQUEST_NULL);
      // Waiting on a null request is a no-op, as in MPI.
      EXPECT_EQ(MPI_Wait(&reqs[0], MPI_STATUS_IGNORE), MPI_SUCCESS);
    } else {
      long long a = 0, b = 0;
      MPI_Request reqs[2];
      MPI_Irecv(&a, 1, MPI_LONG_LONG, 0, 1, MPI_COMM_WORLD, &reqs[0]);
      MPI_Irecv(&b, 1, MPI_LONG_LONG, 0, 2, MPI_COMM_WORLD, &reqs[1]);
      // Drive MPI_Test until the first receive lands, then wait out both.
      int flag = 0;
      MPI_Status st;
      while (!flag) MPI_Test(&reqs[0], &flag, &st);
      EXPECT_EQ(reqs[0], MPI_REQUEST_NULL);
      MPI_Status sts[2];
      MPI_Waitall(2, reqs, sts);
      EXPECT_EQ(a, 7);
      EXPECT_EQ(b, 9);
    }
  });
}

// Satellite fix: Process::waitall takes a const span, so app code can pass
// a const container without copying into a mutable scratch vector.
TEST(C3Mpi, ProcessWaitallAcceptsConstRequests) {
  JobConfig cfg;
  cfg.ranks = 2;
  Job job(cfg);
  job.run([&](Process& p) {
    p.complete_registration();
    int value = p.rank();
    std::vector<core::RequestId> reqs;
    if (p.rank() == 0) {
      reqs.push_back(p.isend(util::as_bytes(value), 1, 5));
    } else {
      reqs.push_back(
          p.irecv({reinterpret_cast<std::byte*>(&value), sizeof(value)}, 0,
                  5));
    }
    const std::vector<core::RequestId>& frozen = reqs;
    p.waitall(frozen);  // std::span<const RequestId> from a const vector
    if (p.rank() == 1) {
      EXPECT_EQ(value, 0);
    }
  });
}

// ------------------------------------------------------------- probes

TEST(C3Mpi, ProbeAndIprobe) {
  JobConfig cfg;
  cfg.ranks = 2;
  Job job(cfg);
  job.run([&](Process& p) {
    c3mpi::MpiBinding mpi(p);
    p.complete_registration();
    int rank = -1;
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
      int flag = 1;
      MPI_Status st;
      // Nothing sent on tag 99 yet: iprobe must report no message.
      MPI_Iprobe(1, 99, MPI_COMM_WORLD, &flag, &st);
      EXPECT_EQ(flag, 0);
      // Tell rank 1 to go ahead, then block-probe for its reply.
      int go = 1;
      MPI_Send(&go, 1, MPI_INT, 1, 7, MPI_COMM_WORLD);
      MPI_Probe(MPI_ANY_SOURCE, 99, MPI_COMM_WORLD, &st);
      EXPECT_EQ(st.MPI_SOURCE, 1);
      EXPECT_EQ(st.MPI_TAG, 99);
      int count = 0;
      MPI_Get_count(&st, MPI_DOUBLE, &count);
      EXPECT_EQ(count, 2);
      // The probe was non-consuming: the message is still receivable.
      double got[2] = {0, 0};
      MPI_Recv(got, 2, MPI_DOUBLE, st.MPI_SOURCE, 99, MPI_COMM_WORLD,
               MPI_STATUS_IGNORE);
      EXPECT_DOUBLE_EQ(got[1], 4.25);
    } else {
      int go = 0;
      MPI_Recv(&go, 1, MPI_INT, 0, 7, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      const double reply[2] = {2.25, 4.25};
      MPI_Send(reply, 2, MPI_DOUBLE, 0, 99, MPI_COMM_WORLD);
    }
  });
}

// ------------------------------------------------- MPI_Wtime determinism

// MPI_Wtime is routed through Process::nondet: reads taken while logging
// are recorded and must replay bit-identically on recovery, so a recovered
// execution observes the original run's clock, not the wall clock.
TEST(C3Mpi, WtimeLoggedAndReplayedBitIdentically) {
  // The kill is protocol-anchored (rank 1 dies closing the log of round
  // `round`), so a committed checkpoint always exists. Whether that
  // epoch's logs contain Wtime reads still depends on where the logging
  // windows fell, so sweep the kill round until replay is observed;
  // replayed values are checked for bit-identity on every attempt.
  bool scenario_seen = false;
  for (int round = 2; round <= 5 && !scenario_seen; ++round) {
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.policy = CheckpointPolicy::every(2);
    arm_log_closed_kill(cfg, /*victim=*/1, round);

    std::mutex mu;
    // (rank, iter) -> first observed MPI_Wtime value.
    std::map<std::pair<int, int>, double> first_seen;
    std::atomic<int> replay_mismatches{0};
    std::atomic<std::uint64_t> replayed_nondet{0};

    Job job(cfg);
    auto report = job.run([&](Process& p) {
      c3mpi::MpiBinding mpi(p);
      int iter = 0;
      long long acc = p.rank();
      p.register_value("iter", iter);
      p.register_value("acc", acc);
      p.complete_registration();
      const int right = (p.rank() + 1) % p.nranks();
      const int left = (p.rank() + p.nranks() - 1) % p.nranks();
      while (iter < 24) {
        const auto replayed_before = p.stats().replayed_nondet_events;
        const double t = MPI_Wtime();
        if (p.stats().replayed_nondet_events > replayed_before) {
          // This read replayed from the log: it must equal the value the
          // original execution observed at the same (rank, iter) exactly.
          std::lock_guard lock(mu);
          auto it = first_seen.find({p.rank(), iter});
          if (it == first_seen.end() || it->second != t) {
            replay_mismatches.fetch_add(1);
          }
        } else {
          std::lock_guard lock(mu);
          first_seen.insert_or_assign({p.rank(), iter}, t);
        }
        MPI_Send(&acc, 1, MPI_LONG_LONG, right, 0, MPI_COMM_WORLD);
        long long got = 0;
        MPI_Recv(&got, 1, MPI_LONG_LONG, left, 0, MPI_COMM_WORLD,
                 MPI_STATUS_IGNORE);
        acc += got;
        ++iter;
        potentialCheckpoint();
      }
      replayed_nondet.fetch_add(p.stats().replayed_nondet_events);
    });

    EXPECT_EQ(replay_mismatches.load(), 0)
        << "a replayed MPI_Wtime diverged from the logged value";
    if (report.failures == 0) continue;  // round `round` never started
    // The kill fired while closing round `round`'s log, so round-1 was
    // committed: rollback (not restart-from-scratch) is guaranteed.
    EXPECT_TRUE(report.recovered) << "round " << round;
    if (replayed_nondet.load() > 0) scenario_seen = true;
  }
  EXPECT_TRUE(scenario_seen)
      << "no kill round left Wtime reads in the committed log";
}

// ----------------------------------- communicators across a recovery line

TEST(C3Mpi, CommDupAndSplitSurviveRecovery) {
  auto run_job = [](int kill_round, core::JobReport* out) {
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.policy = CheckpointPolicy::every(2);
    if (kill_round > 0) arm_log_closed_kill(cfg, /*victim=*/2, kill_round);
    std::mutex mu;
    std::vector<double> results(4, 0.0);
    Job job(cfg);
    auto report = job.run([&](Process& p) {
      c3mpi::MpiBinding mpi(p);
      // Persistent opaque objects created before registration: a dup of
      // world and a parity split, both used throughout the computation.
      MPI_Comm ring;
      MPI_Comm_dup(MPI_COMM_WORLD, &ring);
      MPI_Comm parity;
      MPI_Comm_split(MPI_COMM_WORLD, p.rank() % 2, p.rank(), &parity);

      double acc = 1.0 + p.rank();
      int iter = 0;
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();

      int rank = 0, size = 0;
      MPI_Comm_rank(ring, &rank);
      MPI_Comm_size(ring, &size);
      EXPECT_EQ(size, 4);
      int psize = 0;
      MPI_Comm_size(parity, &psize);
      EXPECT_EQ(psize, 2);

      while (iter < 16) {
        // Ring traffic on the dup'd communicator...
        MPI_Send(&acc, 1, MPI_DOUBLE, (rank + 1) % size, 3, ring);
        double got = 0;
        MPI_Recv(&got, 1, MPI_DOUBLE, (rank + size - 1) % size, 3, ring,
                 MPI_STATUS_IGNORE);
        // ...and a reduction among same-parity ranks on the split one.
        double local = acc + got;
        double reduced = 0;
        MPI_Allreduce(&local, &reduced, 1, MPI_DOUBLE, MPI_SUM, parity);
        acc = 0.5 * acc + 0.25 * got + 0.125 * reduced;
        ++iter;
        potentialCheckpoint();
      }
      std::lock_guard lock(mu);
      results[static_cast<std::size_t>(p.rank())] = acc;
    });
    if (out) *out = report;
    return results;
  };

  const auto clean = run_job(0, nullptr);
  // Rank 2 dies closing the log of round `round`, so the previous round is
  // committed and the job must roll back -- and both pre-registration
  // communicators must come back working, with the result identical to the
  // clean run. (Whether a given round ever starts before the program ends
  // depends on scheduling; sweep until one fires.)
  bool recovered_seen = false;
  for (int round = 2; round <= 4 && !recovered_seen; ++round) {
    core::JobReport report;
    const auto recovered = run_job(round, &report);
    for (int r = 0; r < 4; ++r) {
      EXPECT_DOUBLE_EQ(recovered[static_cast<std::size_t>(r)],
                       clean[static_cast<std::size_t>(r)])
          << "rank " << r << " (round " << round << ")";
    }
    if (report.failures == 0) continue;  // round `round` never started
    EXPECT_TRUE(report.recovered) << "round " << round;
    recovered_seen = report.recovered;
  }
  EXPECT_TRUE(recovered_seen) << "no kill round fired before program end";
}

// Rank 0 receives from racing senders with MPI_ANY_SOURCE, so the match
// order is genuinely non-deterministic. On recovery, every receive that
// consumes a log entry -- a late payload replayed outright, or a live
// receive *pinned* to the logged (source, tag) -- must reproduce exactly
// the (source, value) the original execution observed at that point; once
// the log runs dry the matches are free again (paper Section 4.2).
TEST(C3Mpi, AnySourceMatchedWhileLoggingReplaysInOrder) {
  bool replay_seen = false;
  std::uint64_t total_mismatches = 0;
  for (int round = 2; round <= 5 && !replay_seen; ++round) {
    JobConfig cfg;
    cfg.ranks = 4;
    cfg.policy = CheckpointPolicy::every(2);
    arm_log_closed_kill(cfg, /*victim=*/1, round);
    std::mutex mu;
    // (iter, k) -> rank 0's matched (source, value) in the first execution.
    std::map<std::pair<int, int>, std::pair<int, double>> first_exec;
    std::uint64_t mismatches = 0;
    std::uint64_t replays = 0;

    Job job(cfg);
    auto report = job.run([&](Process& p) {
      c3mpi::MpiBinding mpi(p);
      double acc = 0.0;
      int iter = 0;
      p.register_value("acc", acc);
      p.register_value("iter", iter);
      p.complete_registration();
      while (iter < 16) {
        if (p.rank() == 0) {
          for (int k = 1; k < p.nranks(); ++k) {
            const auto consumed_before =
                p.stats().replayed_recvs + p.stats().replayed_recv_pins;
            MPI_Status st;
            double v = 0;
            MPI_Recv(&v, 1, MPI_DOUBLE, MPI_ANY_SOURCE, 4, MPI_COMM_WORLD,
                     &st);
            const bool from_log =
                p.stats().replayed_recvs + p.stats().replayed_recv_pins >
                consumed_before;
            {
              std::lock_guard lock(mu);
              if (from_log) {
                ++replays;
                auto it = first_exec.find({iter, k});
                if (it == first_exec.end() ||
                    it->second != std::pair<int, double>(st.MPI_SOURCE, v)) {
                  ++mismatches;
                }
              } else {
                first_exec.insert_or_assign({iter, k},
                                            std::pair<int, double>(
                                                st.MPI_SOURCE, v));
              }
            }
            acc = acc * 1.25 + v + 0.5 * st.MPI_SOURCE;
            // Ack keeps the senders in lockstep with the receiver, so the
            // coordination rounds complete mid-run instead of piling into
            // shutdown.
            int ok = iter;
            MPI_Send(&ok, 1, MPI_INT, st.MPI_SOURCE, 5, MPI_COMM_WORLD);
          }
        } else {
          double v = 100.0 * p.rank() + iter;
          MPI_Send(&v, 1, MPI_DOUBLE, 0, 4, MPI_COMM_WORLD);
          int ok = 0;
          MPI_Recv(&ok, 1, MPI_INT, 0, 5, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        }
        ++iter;
        potentialCheckpoint();
      }
    });

    total_mismatches += mismatches;
    if (report.failures == 0) continue;  // round `round` never started
    EXPECT_TRUE(report.recovered) << "round " << round;
    if (replays > 0) replay_seen = true;
  }
  EXPECT_EQ(total_mismatches, 0u)
      << "a replayed wildcard receive diverged from the logged match";
  EXPECT_TRUE(replay_seen)
      << "no kill round left wildcard receives in rank 0's committed log";
}

// ------------------------------------------------------ run_mpi_job wrapper

int simple_mpi_main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  int rank = -1, size = 0;
  MPI_Init(nullptr, nullptr);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  double v = rank + 1.0;
  double total = 0.0;
  MPI_Allreduce(&v, &total, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
  MPI_Barrier(MPI_COMM_WORLD);
  MPI_Finalize();
  return static_cast<int>(total);  // 1+2+3 = 6 on 3 ranks
}

TEST(C3Mpi, RunMpiJobWrapsPlainMainShapedPrograms) {
  JobConfig cfg;
  cfg.ranks = 3;
  // Implicit checkpoint sites: the program never calls potentialCheckpoint,
  // yet its blocking MPI calls give the initiator policy a place to fire.
  cfg.policy = CheckpointPolicy::every(2);
  auto report = c3mpi::run_mpi_job(cfg, &simple_mpi_main);
  ASSERT_EQ(report.exit_codes.size(), 3u);
  for (int code : report.exit_codes) EXPECT_EQ(code, 6);
  EXPECT_EQ(report.job.executions, 1);
  ASSERT_TRUE(report.job.last_committed_epoch.has_value());
  EXPECT_GE(*report.job.last_committed_epoch, 1);
}

}  // namespace
}  // namespace c3
