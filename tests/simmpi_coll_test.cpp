// Collective communication correctness, parameterized over rank count and
// network ordering (FIFO vs adversarial reordering). Collectives are built
// on point-to-point inside simmpi, so these sweeps also stress matching.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <tuple>
#include <vector>

#include "simmpi/api.hpp"
#include "simmpi/runtime.hpp"

namespace c3::simmpi {
namespace {

struct CollParam {
  int ranks;
  bool reorder;
};

class CollTest : public ::testing::TestWithParam<CollParam> {
 protected:
  Runtime make_runtime() const {
    NetConfig cfg;
    if (GetParam().reorder) {
      cfg.order = NetConfig::Order::kRandomReorder;
      cfg.seed = 77;
      cfg.p_hold = 0.6;
      cfg.max_hold = 5;
    }
    return Runtime(GetParam().ranks, cfg);
  }
  int ranks() const { return GetParam().ranks; }
};

TEST_P(CollTest, BarrierCompletes) {
  auto rt = make_runtime();
  rt.run([](Api& api) {
    for (int i = 0; i < 5; ++i) api.barrier(api.world());
  });
}

TEST_P(CollTest, BcastFromEveryRoot) {
  auto rt = make_runtime();
  const int p = ranks();
  rt.run([p](Api& api) {
    for (Rank root = 0; root < p; ++root) {
      std::int64_t v = (api.world_rank() == root) ? 1000 + root : -1;
      api.bcast(api.world(), {reinterpret_cast<std::byte*>(&v), 8}, root);
      EXPECT_EQ(v, 1000 + root);
    }
  });
}

TEST_P(CollTest, ReduceSumToEveryRoot) {
  auto rt = make_runtime();
  const int p = ranks();
  rt.run([p](Api& api) {
    for (Rank root = 0; root < p; ++root) {
      const std::int64_t mine = api.world_rank() + 1;
      std::int64_t out = 0;
      api.reduce(api.world(), util::as_bytes(mine),
                 {reinterpret_cast<std::byte*>(&out), 8}, Datatype::kInt64,
                 Op::kSum, root);
      if (api.world_rank() == root) {
        EXPECT_EQ(out, static_cast<std::int64_t>(p) * (p + 1) / 2);
      }
    }
  });
}

TEST_P(CollTest, AllreduceMinMax) {
  auto rt = make_runtime();
  const int p = ranks();
  rt.run([p](Api& api) {
    const std::int32_t mine = 100 - api.world_rank();
    std::int32_t mn = 0, mx = 0;
    api.allreduce(api.world(), util::as_bytes(mine),
                  {reinterpret_cast<std::byte*>(&mn), 4}, Datatype::kInt32,
                  Op::kMin);
    api.allreduce(api.world(), util::as_bytes(mine),
                  {reinterpret_cast<std::byte*>(&mx), 4}, Datatype::kInt32,
                  Op::kMax);
    EXPECT_EQ(mn, 100 - (p - 1));
    EXPECT_EQ(mx, 100);
  });
}

TEST_P(CollTest, AllreduceVectorDouble) {
  auto rt = make_runtime();
  const int p = ranks();
  rt.run([p](Api& api) {
    std::vector<double> in(16);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<double>(api.world_rank()) + static_cast<double>(i);
    }
    std::vector<double> out(16);
    api.allreduce(api.world(),
                  {reinterpret_cast<const std::byte*>(in.data()), 16 * 8},
                  {reinterpret_cast<std::byte*>(out.data()), 16 * 8},
                  Datatype::kDouble, Op::kSum);
    for (std::size_t i = 0; i < out.size(); ++i) {
      const double expect =
          static_cast<double>(p) * (static_cast<double>(p) - 1) / 2 +
          static_cast<double>(p) * static_cast<double>(i);
      EXPECT_DOUBLE_EQ(out[i], expect);
    }
  });
}

TEST_P(CollTest, GatherToEveryRoot) {
  auto rt = make_runtime();
  const int p = ranks();
  rt.run([p](Api& api) {
    for (Rank root = 0; root < p; ++root) {
      const std::int32_t mine = api.world_rank() * 3;
      std::vector<std::int32_t> all(static_cast<std::size_t>(p), -1);
      api.gather(api.world(), util::as_bytes(mine),
                 {reinterpret_cast<std::byte*>(all.data()),
                  all.size() * 4},
                 root);
      if (api.world_rank() == root) {
        for (int r = 0; r < p; ++r) {
          EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 3);
        }
      }
    }
  });
}

TEST_P(CollTest, AllgatherRing) {
  auto rt = make_runtime();
  const int p = ranks();
  rt.run([p](Api& api) {
    struct Block {
      std::int32_t rank;
      std::int32_t value;
    };
    const Block mine{api.world_rank(), api.world_rank() * api.world_rank()};
    std::vector<Block> all(static_cast<std::size_t>(p));
    api.allgather(api.world(), util::as_bytes(mine),
                  {reinterpret_cast<std::byte*>(all.data()),
                   all.size() * sizeof(Block)});
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].rank, r);
      EXPECT_EQ(all[static_cast<std::size_t>(r)].value, r * r);
    }
  });
}

TEST_P(CollTest, AlltoallTransposes) {
  auto rt = make_runtime();
  const int p = ranks();
  rt.run([p](Api& api) {
    // Block sent from r to q carries value 100*r + q.
    std::vector<std::int32_t> in(static_cast<std::size_t>(p));
    for (int q = 0; q < p; ++q) {
      in[static_cast<std::size_t>(q)] = 100 * api.world_rank() + q;
    }
    std::vector<std::int32_t> out(static_cast<std::size_t>(p), -1);
    api.alltoall(api.world(),
                 {reinterpret_cast<const std::byte*>(in.data()),
                  in.size() * 4},
                 {reinterpret_cast<std::byte*>(out.data()), out.size() * 4});
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(out[static_cast<std::size_t>(r)], 100 * r + api.world_rank());
    }
  });
}

TEST_P(CollTest, InclusiveScan) {
  auto rt = make_runtime();
  rt.run([](Api& api) {
    const std::int64_t mine = api.world_rank() + 1;
    std::int64_t out = 0;
    api.scan(api.world(), util::as_bytes(mine),
             {reinterpret_cast<std::byte*>(&out), 8}, Datatype::kInt64,
             Op::kSum);
    const std::int64_t r = api.world_rank() + 1;
    EXPECT_EQ(out, r * (r + 1) / 2);
  });
}

TEST_P(CollTest, UserDefinedOpAllreduce) {
  auto rt = make_runtime();
  const int p = ranks();
  rt.run([p](Api& api) {
    // Custom op over a struct: componentwise (sum, max).
    struct Pair {
      std::int64_t sum;
      std::int64_t max;
    };
    OpHandle op = api.op_create([](const std::byte* in, std::byte* inout,
                                   std::size_t count) {
      const Pair* a = reinterpret_cast<const Pair*>(in);
      Pair* b = reinterpret_cast<Pair*>(inout);
      for (std::size_t i = 0; i < count; ++i) {
        b[i].sum += a[i].sum;
        b[i].max = std::max(b[i].max, a[i].max);
      }
    });
    const Pair mine{api.world_rank() + 1, api.world_rank() * 7};
    Pair out{};
    api.allreduce_user(api.world(), util::as_bytes(mine),
                       {reinterpret_cast<std::byte*>(&out), sizeof(Pair)},
                       sizeof(Pair), op);
    EXPECT_EQ(out.sum, static_cast<std::int64_t>(p) * (p + 1) / 2);
    EXPECT_EQ(out.max, static_cast<std::int64_t>(p - 1) * 7);
    api.op_free(op);
  });
}

TEST_P(CollTest, BackToBackCollectivesDoNotCrossMatch) {
  auto rt = make_runtime();
  const int p = ranks();
  rt.run([p](Api& api) {
    for (int round = 0; round < 20; ++round) {
      std::int32_t v = api.world_rank() + round;
      std::int32_t sum = 0;
      api.allreduce(api.world(), util::as_bytes(v),
                    {reinterpret_cast<std::byte*>(&sum), 4}, Datatype::kInt32,
                    Op::kSum);
      EXPECT_EQ(sum, p * (p - 1) / 2 + p * round);
    }
  });
}

TEST_P(CollTest, CommDupIsolatesTraffic) {
  auto rt = make_runtime();
  rt.run([](Api& api) {
    Comm dup = api.comm_dup(api.world());
    EXPECT_EQ(dup.size(), api.world().size());
    EXPECT_EQ(dup.rank(), api.world().rank());
    EXPECT_NE(dup.context_base(), api.world().context_base());
    // Same tag on both comms; each recv must get its own comm's message.
    if (api.world_rank() == 0 && api.world_size() > 1) {
      const std::int32_t on_world = 1, on_dup = 2;
      api.send(api.world(), util::as_bytes(on_world), 1, 0);
      api.send(dup, util::as_bytes(on_dup), 1, 0);
    } else if (api.world_rank() == 1) {
      std::int32_t got_dup = 0, got_world = 0;
      // Receive dup first even though world's message was sent first.
      api.recv(dup, {reinterpret_cast<std::byte*>(&got_dup), 4}, 0, 0);
      api.recv(api.world(), {reinterpret_cast<std::byte*>(&got_world), 4}, 0, 0);
      EXPECT_EQ(got_dup, 2);
      EXPECT_EQ(got_world, 1);
    }
    api.barrier(dup);
  });
}

TEST_P(CollTest, CommSplitEvenOdd) {
  auto rt = make_runtime();
  const int p = ranks();
  rt.run([p](Api& api) {
    const int color = api.world_rank() % 2;
    Comm half = api.comm_split(api.world(), color, api.world_rank());
    const int expect_size = (p + (color == 0 ? 1 : 0)) / 2;
    EXPECT_EQ(half.size(), expect_size);
    EXPECT_EQ(half.rank(), api.world_rank() / 2);
    // A reduction within each half sums only that half's ranks.
    std::int64_t mine = api.world_rank();
    std::int64_t sum = 0;
    api.allreduce(half, util::as_bytes(mine),
                  {reinterpret_cast<std::byte*>(&sum), 8}, Datatype::kInt64,
                  Op::kSum);
    std::int64_t expect = 0;
    for (int r = color; r < p; r += 2) expect += r;
    EXPECT_EQ(sum, expect);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollTest,
    ::testing::Values(CollParam{1, false}, CollParam{2, false},
                      CollParam{3, false}, CollParam{4, false},
                      CollParam{5, false}, CollParam{8, false},
                      CollParam{2, true}, CollParam{3, true},
                      CollParam{4, true}, CollParam{7, true},
                      CollParam{8, true}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.ranks) +
             (info.param.reorder ? "_reorder" : "_fifo");
    });

TEST(CommSplit, NegativeColorGetsNoComm) {
  Runtime rt(4);
  rt.run([](Api& api) {
    const int color = (api.world_rank() == 3) ? -1 : 0;
    Comm c = api.comm_split(api.world(), color, 0);
    if (api.world_rank() == 3) {
      EXPECT_FALSE(c.member());
    } else {
      EXPECT_EQ(c.size(), 3);
      api.barrier(c);
    }
  });
}

TEST(CollErrors, ReduceBufferNotWholeElements) {
  Runtime rt(2);
  EXPECT_THROW(rt.run([](Api& api) {
    util::Bytes in(7);  // not divisible by sizeof(int64)
    util::Bytes out(7);
    api.reduce(api.world(), in, out, Datatype::kInt64, Op::kSum, 0);
  }),
               util::UsageError);
}

}  // namespace
}  // namespace c3::simmpi
