// Property-style sweeps over the protocol's configuration space: both
// piggyback encodings, FIFO and adversarial delivery, many failure points,
// and several rank counts must all preserve the central invariant --
// a recovered execution produces results identical to a failure-free one --
// plus structural protocol invariants (checked internally by the protocol
// layer, which throws CorruptionError on any violation).
#include <gtest/gtest.h>

#include <memory>
#include <mutex>

#include "ckptstore/store.hpp"
#include "core/job.hpp"
#include "replica/replicated_storage.hpp"
#include "util/stable_storage.hpp"

namespace c3::core {
namespace {

struct SweepParam {
  int ranks;
  PiggybackMode piggyback;
  bool reorder;
  std::uint64_t trigger;  // 0 = no failure
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  std::string s = "p" + std::to_string(p.ranks);
  s += p.piggyback == PiggybackMode::kPacked ? "_packed" : "_full";
  s += p.reorder ? "_reorder" : "_fifo";
  s += "_t" + std::to_string(p.trigger);
  return s;
}

/// A mixed workload touching every protocol feature: point-to-point ring
/// traffic, wildcard receives, collectives, random draws.
std::vector<long long> run_mixed(const SweepParam& param) {
  auto results = std::make_shared<std::vector<long long>>(
      static_cast<std::size_t>(param.ranks));
  auto mu = std::make_shared<std::mutex>();
  JobConfig cfg;
  cfg.ranks = param.ranks;
  cfg.piggyback = param.piggyback;
  // kFull mode additionally cross-checks the packed color rule against the
  // true epoch comparison on every received message.
  cfg.validate_classification = (param.piggyback == PiggybackMode::kFull);
  cfg.policy = CheckpointPolicy::every(2);
  if (param.reorder) {
    cfg.net.order = simmpi::NetConfig::Order::kRandomReorder;
    cfg.net.seed = 1234;
    cfg.net.p_hold = 0.5;
    cfg.net.max_hold = 4;
  }
  if (param.trigger > 0) {
    cfg.failure = net::FailureSpec{.victim_rank = param.ranks - 1,
                                   .trigger_events = param.trigger};
  }
  Job job(cfg);
  job.run([&](Process& p) {
    long long acc = p.rank() * 13 + 1;
    int iter = 0;
    p.register_value("acc", acc);
    p.register_value("iter", iter);
    p.complete_registration();
    const int right = (p.rank() + 1) % p.nranks();
    const int left = (p.rank() - 1 + p.nranks()) % p.nranks();
    while (iter < 8) {
      // Ring exchange with a deterministic random perturbation.
      const long long salt =
          static_cast<long long>(p.random_u64() % 97);
      p.send_value(acc + salt, right, iter % 3);
      acc = acc * 3 + p.recv_value<long long>(left, iter % 3);
      // A reduction every other iteration.
      if (iter % 2 == 0) {
        long long sum = 0;
        p.allreduce(util::as_bytes(acc),
                    {reinterpret_cast<std::byte*>(&sum), 8},
                    simmpi::Datatype::kInt64, simmpi::Op::kSum);
        acc += sum % 1009;
      }
      ++iter;
      p.potential_checkpoint();
    }
    std::lock_guard lock(*mu);
    (*results)[static_cast<std::size_t>(p.rank())] = acc;
  });
  return *results;
}

class MixedSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MixedSweep, RecoveredEqualsCleanRun) {
  SweepParam clean_param = GetParam();
  clean_param.trigger = 0;
  const auto clean = run_mixed(clean_param);
  if (GetParam().trigger == 0) {
    // No-failure instance: just require deterministic completion.
    EXPECT_EQ(clean, run_mixed(clean_param));
    return;
  }
  const auto recovered = run_mixed(GetParam());
  EXPECT_EQ(clean, recovered);
}

INSTANTIATE_TEST_SUITE_P(
    Space, MixedSweep,
    ::testing::Values(
        // Baseline determinism in each mode.
        SweepParam{3, PiggybackMode::kPacked, false, 0},
        SweepParam{3, PiggybackMode::kFull, false, 0},
        SweepParam{4, PiggybackMode::kPacked, true, 0},
        // Failure sweep, packed piggyback, FIFO.
        SweepParam{3, PiggybackMode::kPacked, false, 7},
        SweepParam{3, PiggybackMode::kPacked, false, 15},
        SweepParam{3, PiggybackMode::kPacked, false, 23},
        SweepParam{3, PiggybackMode::kPacked, false, 31},
        // Full piggyback with live classification cross-checking.
        SweepParam{3, PiggybackMode::kFull, false, 15},
        SweepParam{3, PiggybackMode::kFull, false, 23},
        // Adversarial reordering.
        SweepParam{4, PiggybackMode::kPacked, true, 12},
        SweepParam{4, PiggybackMode::kPacked, true, 20},
        SweepParam{4, PiggybackMode::kFull, true, 18},
        // More ranks.
        SweepParam{6, PiggybackMode::kPacked, false, 25},
        SweepParam{8, PiggybackMode::kPacked, true, 30}),
    param_name);

// Epoch colors must alternate correctly over many checkpoints (the packed
// encoding depends only on parity; a long run crosses many color flips).
TEST(EpochColors, ManyCheckpointsAlternateCorrectly) {
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.piggyback = PiggybackMode::kPacked;
  cfg.policy = CheckpointPolicy::every(1);
  Job job(cfg);
  auto report = job.run([](Process& p) {
    int iter = 0;
    p.register_value("iter", iter);
    p.complete_registration();
    while (iter < 30) {
      p.send_value(iter, (p.rank() + 1) % 2, 0);
      (void)p.recv_value<int>((p.rank() + 1) % 2, 0);
      ++iter;
      p.potential_checkpoint();
    }
  });
  ASSERT_TRUE(report.last_committed_epoch.has_value());
  EXPECT_GE(*report.last_committed_epoch, 6)
      << "many global checkpoints must complete across color flips";
}

// Stress: simultaneous heavy traffic from all ranks to all ranks while
// checkpoints fire continuously; internal protocol invariants (count
// agreement, classification sanity) must hold throughout.
TEST(Stress, AllToAllTrafficUnderContinuousCheckpointing) {
  constexpr int kRanks = 5;
  JobConfig cfg;
  cfg.ranks = kRanks;
  cfg.policy = CheckpointPolicy::every(1);
  cfg.net.order = simmpi::NetConfig::Order::kRandomReorder;
  cfg.net.seed = 5;
  cfg.net.p_hold = 0.4;
  cfg.net.max_hold = 3;
  Job job(cfg);
  job.run([](Process& p) {
    long long acc = 0;
    int iter = 0;
    p.register_value("acc", acc);
    p.register_value("iter", iter);
    p.complete_registration();
    while (iter < 10) {
      // Send to every peer, then receive from every peer (wildcard).
      for (int q = 0; q < p.nranks(); ++q) {
        if (q == p.rank()) continue;
        p.send_value(static_cast<long long>(iter * 100 + p.rank()), q, 1);
      }
      for (int q = 0; q < p.nranks() - 1; ++q) {
        acc += p.recv_value<long long>(simmpi::kAnySource, 1);
      }
      ++iter;
      p.potential_checkpoint();
    }
    // acc = sum over iters of sum of (iter*100 + sender) over all senders.
    long long expect = 0;
    for (int it = 0; it < 10; ++it) {
      for (int q = 0; q < kRanks; ++q) {
        if (q == p.rank()) continue;
        expect += it * 100 + q;
      }
    }
    EXPECT_EQ(acc, expect);
  });
}

// Parity retention properties over a long GC'd run. The replica tier
// stores a group's parity shards in the same epoch as the data they cover,
// and the pipeline's GC defers dropping any epoch a committed manifest
// still references. Two invariants follow, checked after every commit:
//
//   1. every data blob the backend retains is still covered -- its group's
//      parity shard for that epoch is retained with it (so a rank loss at
//      ANY point between commits is recoverable);
//   2. parity pinning is bounded: `full_interval` forces inline rewrites,
//      so the set of retained epochs (data + their parity) cannot grow
//      beyond the interval no matter how long the job runs.
TEST(ReplicaRetention, LiveParityPinnedAndBoundedByFullInterval) {
  constexpr int kRanks = 4;
  constexpr int kEpochs = 12;
  auto backend = std::make_shared<util::MemoryStorage>();
  replica::ReplicaConfig rc;
  rc.group_size = 2;  // two groups: parity lives in the other group
  rc.parity_k = 1;
  auto tier =
      std::make_shared<replica::ReplicatedStorage>(backend, kRanks, rc);
  ckptstore::StoreOptions so;
  so.async = false;
  so.full_interval = 4;
  ckptstore::CheckpointStore store(tier, so);
  const auto& map = tier->group_map();

  // Evolving per-rank state: a small mutation per epoch so consecutive
  // epochs delta-reference older homes (the pinning under test).
  std::vector<util::Bytes> state(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    state[static_cast<std::size_t>(r)].resize(16 * 1024);
    for (std::size_t i = 0; i < state[static_cast<std::size_t>(r)].size();
         ++i) {
      state[static_cast<std::size_t>(r)][i] =
          static_cast<std::byte>((i * 31 + static_cast<std::size_t>(r)) &
                                 0xff);
    }
  }

  for (int e = 1; e <= kEpochs; ++e) {
    for (int r = 0; r < kRanks; ++r) {
      auto& s = state[static_cast<std::size_t>(r)];
      s[static_cast<std::size_t>(e * 37 + r) % s.size()] ^= std::byte{0x5a};
      store.put({e, r, "state"}, s);
    }
    store.commit(e);
    if (e >= 2) store.drop_epoch(e - 1);  // protocol-style superseded GC

    // Invariant 1: co-retention. Any epoch whose data blobs the GC kept
    // (because a live manifest references them) must also keep the parity
    // shards covering those blobs.
    for (int kept : backend->list_epochs()) {
      for (int r = 0; r < kRanks; ++r) {
        if (!backend->get({kept, r, "state"}).has_value()) continue;
        const int gid = map.gid_of(r);
        for (int j = 0; j < map.parity_k(); ++j) {
          const int owner = map.owner(gid, j, kept);
          const std::string psec = std::string(replica::kParitySectionPrefix) +
                                   std::to_string(gid) + "!" +
                                   std::to_string(j) + "!state";
          EXPECT_TRUE(backend->get({kept, owner, psec}).has_value())
              << "epoch " << kept << " rank " << r
              << ": data retained but its parity shard was dropped";
        }
      }
    }

    // Invariant 2: the pinned set stays bounded by full_interval.
    EXPECT_LE(backend->list_epochs().size(),
              static_cast<std::size_t>(so.full_interval) + 2)
        << "parity pinning grew beyond the full_interval bound at epoch "
        << e;
  }

  // End-to-end: after all that GC, losing a whole rank must still leave
  // the committed epoch fully reconstructable -- the retained home epochs
  // heal recursively through the replica tier.
  store.wipe_rank(1);
  for (int r = 0; r < kRanks; ++r) {
    const auto back = store.get({kEpochs, r, "state"});
    ASSERT_TRUE(back.has_value()) << "rank " << r;
    EXPECT_EQ(*back, state[static_cast<std::size_t>(r)]) << "rank " << r;
  }
  EXPECT_GE(tier->storage_stats().reconstruct_reads, 1u);
}

// The protocol must also be a no-op performance-wise when disabled: a
// passthrough job with failures cannot recover but must restart cleanly.
TEST(RawMode, RestartsFromScratchAfterFailure) {
  JobConfig cfg;
  cfg.ranks = 2;
  cfg.level = InstrumentLevel::kRaw;
  cfg.failure = net::FailureSpec{.victim_rank = 0, .trigger_events = 5};
  Job job(cfg);
  auto report = job.run([](Process& p) {
    for (int i = 0; i < 5; ++i) {
      p.send_value(i, (p.rank() + 1) % 2, 0);
      EXPECT_EQ(p.recv_value<int>((p.rank() + 1) % 2, 0), i);
      p.potential_checkpoint();
    }
  });
  EXPECT_EQ(report.executions, 2);
  EXPECT_FALSE(report.recovered);
}

}  // namespace
}  // namespace c3::core
