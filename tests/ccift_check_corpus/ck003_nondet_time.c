/* CK003: a raw clock read in checkpointed code; replay after recovery will
 * not reproduce the pre-failure value. */
double t0;

void sample(void) {
  t0 = (double)clock();
  potentialCheckpoint();
}

int main(void) {
  sample();
  return 0;
}
