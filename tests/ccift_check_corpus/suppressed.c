/* A CK003 finding waived with the annotation syntax: the seed is drawn once
 * at startup and logged by the driver, so replay stays deterministic. */
double seed;

void init(void) {
  seed = (double)rand(); /* ccift-ok: CK003 */
  potentialCheckpoint();
}

int main(void) {
  init();
  return 0;
}
