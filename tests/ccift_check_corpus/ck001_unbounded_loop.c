/* CK001: a convergence loop with no checkpoint site inside it -- a failure
 * rolls back an unbounded amount of work. */
double err;

void solve(void) {
  potentialCheckpoint();
  while (err > 0.5) {
    err = err * 0.9;
  }
}

int main(void) {
  err = 100.0;
  solve();
  return 0;
}
