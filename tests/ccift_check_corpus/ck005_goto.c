/* CK005: goto in a checkpointable function bypasses the position-stack
 * instrumentation and cannot be resumed. */
void retryer(void) {
  int tries;
  tries = 0;
retry:
  potentialCheckpoint();
  tries = tries + 1;
  if (tries < 3) {
    goto retry;
  }
}

int main(void) {
  retryer();
  return 0;
}
