/* CK006: a static local in a checkpointable function is neither VDS-saved
 * (not an automatic) nor registered (not a global). */
void tick(void) {
  static int calls;
  calls = calls + 1;
  potentialCheckpoint();
}

int main(void) {
  tick();
  return 0;
}
