/* A checkpoint-safe program: every check passes with no suppressions. */
int iterations;

void work(void) {
  int i;
  for (i = 0; i < iterations; i++) {
    potentialCheckpoint();
  }
}

int main(void) {
  iterations = 10;
  work();
  return 0;
}
