// A C++ translation unit: outside the ccift C subset, so the checker
// degrades to the token-level scan and still catches the call-based checks.
#include <cstdlib>

namespace demo {

class Sampler {
 public:
  double draw() { return rand() * scale_; }

 private:
  double scale_ = 1.0;
};

}  // namespace demo
