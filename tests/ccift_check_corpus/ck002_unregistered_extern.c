/* CK002: `lost_counter` is declared extern but defined in no analyzed unit,
 * yet checkpointed code mutates it -- it is never registered. */
extern int lost_counter;

void step(void) {
  potentialCheckpoint();
  lost_counter = lost_counter + 1;
}

int main(void) {
  step();
  return 0;
}
