/* CK005: a variable-length array captured across a checkpoint site -- the
 * rebuilt frame's descriptor size depends on pre-dispatch state. */
void scratch(int n) {
  double buf[n];
  buf[0] = 0.0;
  potentialCheckpoint();
}

int main(void) {
  scratch(4);
  return 0;
}
