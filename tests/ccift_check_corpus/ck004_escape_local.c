/* CK004: the address of a local escapes to a global across a checkpoint
 * site; the restart rebuilds the frame elsewhere and the pointer dangles. */
int *saved;

void stash(void) {
  int local;
  local = 1;
  saved = &local;
  potentialCheckpoint();
}

int main(void) {
  stash();
  return 0;
}
