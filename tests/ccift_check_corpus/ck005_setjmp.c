/* CK005: setjmp saves a stack context a restarted process cannot revive. */
void handler(void) {
  potentialCheckpoint();
}

int main(void) {
  int code;
  code = setjmp(0);
  if (code == 0) {
    handler();
  }
  return 0;
}
