/* Companion unit for ck002_unregistered_extern.c: defines the global.
 * Analyzing both files together must clear the CK002 finding. */
int lost_counter;
