/* CK007: the program defines main but no checkpoint site is reachable from
 * it -- a failure restarts the run from the beginning. */
int total;

int main(void) {
  int i;
  for (i = 0; i < 4; i++) {
    total = total + i;
  }
  return 0;
}
