"""Shared helpers for the CI gate scripts (stdlib only, no third-party deps).

Every gate script follows the same contract: a malformed JSON file or a
record missing an expected field fails the gate with a message naming the
file and lane -- never a bare traceback, and never a zero exit.
"""
import json
import sys
from pathlib import Path


def fail(msg: str, prefix: str = "GATE FAIL") -> None:
    print(f"{prefix}: {msg}")
    sys.exit(1)


def load_json(path, prefix: str = "GATE FAIL") -> dict:
    """Parse a JSON report; a truncated or malformed file (a tool that
    crashed mid-write) fails the gate by name instead of surfacing as a
    traceback."""
    path = Path(path)
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path.name}: malformed JSON ({e})", prefix)


def require(entry: dict, key: str, where: str, prefix: str = "GATE FAIL"):
    """Fetch a field from a result entry, failing with the lane's name
    rather than a KeyError when a tool emitted an incomplete record."""
    if key not in entry:
        fail(f"{where}: result entry missing field '{key}': {entry}", prefix)
    return entry[key]
