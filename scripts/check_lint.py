#!/usr/bin/env python3
"""Gate CI on the checkpoint-safety analyzer: ccift --check must report zero
unsuppressed findings over the checked-in C/C++ sources.

Usage: check_lint.py <ccift-binary> <report.json> <path>...

Each path may be a file or a directory (searched recursively for *.c, *.cc,
*.cpp). Every file is analyzed together as one program in --mpi mode, the
same facade configuration the heat demo pipeline uses, so the MPI blocking
entry points count as checkpoint sites. The JSON report is written to
<report.json> (uploaded as a CI artifact); each unsuppressed finding is
echoed as file:line [CKxxx] before the gate fails. The check catalog and the
`// ccift-ok: CKxxx` suppression syntax are documented in docs/analysis.md.
"""
import subprocess
import sys
from pathlib import Path

import ci_util

PREFIX = "LINT GATE FAIL"


def main() -> None:
    if len(sys.argv) < 4:
        ci_util.fail("usage: check_lint.py <ccift-binary> <report.json> "
                     "<path>...", PREFIX)
    ccift, report_path = sys.argv[1], sys.argv[2]

    files = []
    for arg in sys.argv[3:]:
        p = Path(arg)
        if p.is_dir():
            for pattern in ("*.c", "*.cc", "*.cpp"):
                files.extend(sorted(p.rglob(pattern)))
        elif p.is_file():
            files.append(p)
        else:
            ci_util.fail(f"no such file or directory: {arg}", PREFIX)
    if not files:
        ci_util.fail("no C/C++ sources found under the given paths", PREFIX)

    cmd = [ccift, "--check", "--mpi", "--json", report_path]
    cmd += [str(f) for f in files]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
    except OSError as e:
        ci_util.fail(f"cannot run {ccift}: {e}", PREFIX)
    # ccift prints its file:line diagnostics on stderr; surface them.
    if proc.stderr:
        print(proc.stderr, end="")
    if proc.stdout:
        print(proc.stdout, end="")

    report = ci_util.load_json(report_path, PREFIX)
    live = [f for f in report.get("findings", [])
            if not f.get("suppressed")]
    for f in live:
        fid = ci_util.require(f, "id", f"{Path(report_path).name} findings",
                              PREFIX)
        print(f"  unsuppressed: {f.get('file')}:{f.get('line')} [{fid}]")

    counts = report.get("counts", {})
    print(f"lint gate: {len(files)} file(s) checked, "
          f"{len(live)} unsuppressed finding(s), "
          f"{counts.get('suppressed', 0)} suppressed")
    if live:
        ci_util.fail(f"{len(live)} unsuppressed checkpoint-safety "
                     "finding(s); fix them or annotate with "
                     "// ccift-ok: CKxxx", PREFIX)
    if proc.returncode != 0:
        ci_util.fail(f"ccift --check exited {proc.returncode} with no "
                     "findings reported (bad input path?)", PREFIX)
    print("lint gate: all checks passed")


if __name__ == "__main__":
    main()
