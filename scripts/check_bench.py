#!/usr/bin/env python3
"""Gate CI on the benchmark JSON the bench binaries emit.

Checks (stdlib only, no third-party deps):
  BENCH_scaling.json    -- initiator control sends per phase must stay within
                           ceil(log2 P) at every swept rank count (the tree
                           control plane's core claim; a flat fan-out would
                           be P-1).
  BENCH_protocol.json   -- c3mpi facade overhead vs the direct API must stay
                           within 5% at every payload size (negative values,
                           i.e. the facade measuring faster, always pass).
  BENCH_checkpoint.json -- with per-rank writer lanes the commit stall at
                           the largest swept rank count must stay within
                           1.5x the 1-rank stall (flat-commit claim). The
                           parity-replicated lane (erasure-coded replica
                           tier stacked under the laned store) must stay
                           within 1.5x the unreplicated laned stall at
                           every swept rank count. The cow lane
                           (capture-and-return, encode + commit behind the
                           app) must stay within 0.25x the laned
                           synchronous stall at every swept rank count.
  BENCH_collectives.json -- the ring allreduce must beat the naive
                           reduce+bcast by >= 3x at 16 MiB / 16 ranks, the
                           tuned path must not regress small-message
                           latency beyond 1.1x naive at 4 KiB, and the
                           segmented large-message lane must show a
                           zero-allocation, zero-oversize steady state.

Usage: check_bench.py <build-dir>
Missing files fail the gate except BENCH_protocol.json, which is optional
(the microbench lane only runs on demand in some jobs).

A malformed JSON file or a result entry missing an expected field fails
the gate with a message naming the file and lane -- never a bare
traceback, and never a zero exit.
"""
import math
import sys
from pathlib import Path

import ci_util

PREFIX = "BENCH GATE FAIL"

FACADE_OVERHEAD_LIMIT_PCT = 5.0
COMMIT_STALL_LIMIT_X = 1.5
COW_STALL_LIMIT_X = 0.25
RING_SPEEDUP_MIN_X = 3.0
RING_GATE_RANKS = 16
RING_GATE_BYTES = 16 * 1024 * 1024
SMALL_MESSAGE_LIMIT_X = 1.1


# Thin wrappers binding the shared gate helpers to this gate's prefix.
def fail(msg: str) -> None:
    ci_util.fail(msg, PREFIX)


def load_json(path: Path) -> dict:
    return ci_util.load_json(path, PREFIX)


def require(entry: dict, key: str, where: str):
    return ci_util.require(entry, key, where, PREFIX)


def check_scaling(path: Path) -> None:
    data = load_json(path)
    sweep = data.get("rank_sweep", [])
    if not sweep:
        fail(f"{path.name}: empty rank_sweep")
    for entry in sweep:
        where = f"{path.name} rank_sweep"
        ranks = require(entry, "ranks", where)
        bound = math.ceil(math.log2(ranks))
        sends = require(entry, "initiator_sends_per_phase",
                        f"{where} ({ranks} ranks)")
        for phase, count in sends.items():
            if count > bound:
                fail(
                    f"{path.name}: {ranks} ranks, phase '{phase}': initiator "
                    f"sent {count}/phase, bound is ceil(log2 P) = {bound}"
                )
        print(
            f"  scaling ok: {ranks:4d} ranks, initiator sends "
            f"{max(sends.values()):.1f}/phase <= {bound}"
        )


def check_protocol(path: Path) -> None:
    data = load_json(path)
    for entry in data.get("facade_overhead_pct", []):
        where = f"{path.name} facade_overhead_pct"
        pct = require(entry, "overhead_pct", where)
        payload = require(entry, "payload_bytes", where)
        if pct > FACADE_OVERHEAD_LIMIT_PCT:
            fail(
                f"{path.name}: facade overhead {pct:+.2f}% at {payload} B "
                f"payload exceeds {FACADE_OVERHEAD_LIMIT_PCT}%"
            )
        print(f"  facade ok: {payload:6d} B payload, {pct:+.2f}% overhead")


def check_stall_lane(path: Path, sweep: list, laned_by_ranks: dict,
                     mode: str, limit: float) -> None:
    """Gate one sweep lane's commit stall against the unreplicated laned
    stall at the same rank count."""
    entries = [r for r in sweep if r.get("mode") == mode]
    if not entries:
        fail(f"{path.name}: no {mode} sweep results")
    for entry in entries:
        where = f"{path.name} {mode} lane"
        ranks = require(entry, "ranks", where)
        peer = laned_by_ranks.get(ranks)
        if peer is None:
            fail(
                f"{path.name}: {mode} result at {ranks} ranks has no "
                f"per-rank-lanes baseline at the same rank count"
            )
        baseline = require(peer, "commit_stall_seconds_per_epoch",
                           f"{path.name} per-rank-lanes lane")
        stall = require(entry, "commit_stall_seconds_per_epoch", where)
        if baseline > 0:
            ratio = stall / baseline
        else:
            ratio = require(entry, "stall_vs_laned", where)
        if ratio > limit:
            fail(
                f"{path.name}: {mode} commit stall at {ranks} ranks is "
                f"{ratio:.2f}x the unreplicated laned stall, limit {limit}x"
            )
        print(
            f"  {mode} ok: {ranks:4d} ranks commit stall {ratio:.2f}x "
            f"unreplicated laned (limit {limit}x)"
        )


def check_checkpoint(path: Path) -> None:
    data = load_json(path)
    sweep = data.get("rank_sweep", {}).get("results", [])
    laned = [r for r in sweep if r.get("mode") == "per-rank-lanes"]
    if not laned:
        fail(f"{path.name}: no per-rank-lanes sweep results")
    where = f"{path.name} per-rank-lanes lane"
    worst = max(laned, key=lambda r: require(r, "ranks", where))
    ratio = require(worst, "stall_vs_one_rank", where)
    if ratio > COMMIT_STALL_LIMIT_X:
        fail(
            f"{path.name}: commit stall at {worst['ranks']} ranks is "
            f"{ratio:.2f}x the 1-rank stall, limit {COMMIT_STALL_LIMIT_X}x"
        )
    print(
        f"  checkpoint ok: {worst['ranks']} ranks commit stall "
        f"{ratio:.2f}x 1-rank (limit {COMMIT_STALL_LIMIT_X}x)"
    )
    laned_by_ranks = {require(r, "ranks", where): r for r in laned}
    check_stall_lane(path, sweep, laned_by_ranks, "parity-replicated",
                     COMMIT_STALL_LIMIT_X)
    check_stall_lane(path, sweep, laned_by_ranks, "cow", COW_STALL_LIMIT_X)


def check_collectives(path: Path) -> None:
    data = load_json(path)
    sweep = data.get("size_sweep", [])
    if not sweep:
        fail(f"{path.name}: empty size_sweep")
    gate = None
    for entry in sweep:
        where = f"{path.name} size_sweep"
        ranks = require(entry, "ranks", where)
        bytes_ = require(entry, "bytes", where)
        require(entry, "naive_s", where)
        require(entry, "tuned_s", where)
        speedup = require(entry, "speedup", where)
        if ranks == RING_GATE_RANKS and bytes_ == RING_GATE_BYTES:
            gate = entry
        print(
            f"  collectives: {ranks:3d} ranks, {bytes_:9d} B, "
            f"tuned {speedup:.2f}x naive"
        )
    if gate is None:
        fail(
            f"{path.name}: size_sweep has no entry at the gate point "
            f"({RING_GATE_RANKS} ranks, {RING_GATE_BYTES} B)"
        )
    if gate["speedup"] < RING_SPEEDUP_MIN_X:
        fail(
            f"{path.name}: ring allreduce speedup at {RING_GATE_RANKS} "
            f"ranks / {RING_GATE_BYTES} B is {gate['speedup']:.2f}x, "
            f"gate is >= {RING_SPEEDUP_MIN_X}x"
        )
    print(
        f"  collectives ok: {gate['speedup']:.2f}x at {RING_GATE_RANKS} "
        f"ranks / 16 MiB (gate >= {RING_SPEEDUP_MIN_X}x)"
    )

    small = data.get("small_message")
    if not small:
        fail(f"{path.name}: missing small_message lane")
    ratio = require(small, "ratio", f"{path.name} small_message")
    if ratio > SMALL_MESSAGE_LIMIT_X:
        fail(
            f"{path.name}: small-message latency is {ratio:.3f}x naive at "
            f"{small.get('bytes')} B, limit {SMALL_MESSAGE_LIMIT_X}x"
        )
    print(
        f"  collectives ok: small-message ratio {ratio:.3f}x "
        f"(limit {SMALL_MESSAGE_LIMIT_X}x)"
    )

    seg = data.get("segmented")
    if not seg:
        fail(f"{path.name}: missing segmented lane")
    where = f"{path.name} segmented"
    steady = require(seg, "steady_allocs", where)
    oversize = require(seg, "oversize_allocs", where)
    if steady != 0 or oversize != 0:
        fail(
            f"{path.name}: segmented steady state not clean: "
            f"{steady} fresh allocs, {oversize} oversize allocs "
            f"(both must be 0)"
        )
    print(
        f"  collectives ok: segmented steady state 0 allocs / 0 oversize "
        f"over {seg.get('rounds')} rounds of {seg.get('bytes')} B"
    )


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench.py <build-dir>")
    build = Path(sys.argv[1])

    scaling = build / "BENCH_scaling.json"
    if not scaling.is_file():
        fail(f"{scaling} missing")
    check_scaling(scaling)

    checkpoint = build / "BENCH_checkpoint.json"
    if not checkpoint.is_file():
        fail(f"{checkpoint} missing")
    check_checkpoint(checkpoint)

    collectives = build / "BENCH_collectives.json"
    if not collectives.is_file():
        fail(f"{collectives} missing")
    check_collectives(collectives)

    protocol = build / "BENCH_protocol.json"
    if protocol.is_file():
        check_protocol(protocol)
    else:
        print(f"  note: {protocol.name} absent, facade gate skipped")

    print("bench gate: all checks passed")


if __name__ == "__main__":
    main()
