#!/usr/bin/env python3
"""Gate CI on the benchmark JSON the bench binaries emit.

Checks (stdlib only, no third-party deps):
  BENCH_scaling.json    -- initiator control sends per phase must stay within
                           ceil(log2 P) at every swept rank count (the tree
                           control plane's core claim; a flat fan-out would
                           be P-1).
  BENCH_protocol.json   -- c3mpi facade overhead vs the direct API must stay
                           within 5% at every payload size (negative values,
                           i.e. the facade measuring faster, always pass).
  BENCH_checkpoint.json -- with per-rank writer lanes the commit stall at
                           the largest swept rank count must stay within
                           1.5x the 1-rank stall (flat-commit claim). The
                           parity-replicated lane (erasure-coded replica
                           tier stacked under the laned store) must stay
                           within 1.5x the unreplicated laned stall at
                           every swept rank count. The cow lane
                           (capture-and-return, encode + commit behind the
                           app) must stay within 0.25x the laned
                           synchronous stall at every swept rank count.

Usage: check_bench.py <build-dir>
Missing files fail the gate except BENCH_protocol.json, which is optional
(the microbench lane only runs on demand in some jobs).

A malformed JSON file or a result entry missing an expected field fails
the gate with a message naming the file and lane -- never a bare
traceback, and never a zero exit.
"""
import json
import math
import sys
from pathlib import Path

FACADE_OVERHEAD_LIMIT_PCT = 5.0
COMMIT_STALL_LIMIT_X = 1.5
COW_STALL_LIMIT_X = 0.25


def fail(msg: str) -> None:
    print(f"BENCH GATE FAIL: {msg}")
    sys.exit(1)


def load_json(path: Path) -> dict:
    """Parse a bench JSON file; a truncated or malformed file (a bench
    binary that crashed mid-write) fails the gate by name instead of
    surfacing as a traceback."""
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path.name}: malformed bench JSON ({e})")


def require(entry: dict, key: str, where: str):
    """Fetch a field from a result entry, failing with the lane's name
    rather than a KeyError when a bench emitted an incomplete record."""
    if key not in entry:
        fail(f"{where}: result entry missing field '{key}': {entry}")
    return entry[key]


def check_scaling(path: Path) -> None:
    data = load_json(path)
    sweep = data.get("rank_sweep", [])
    if not sweep:
        fail(f"{path.name}: empty rank_sweep")
    for entry in sweep:
        where = f"{path.name} rank_sweep"
        ranks = require(entry, "ranks", where)
        bound = math.ceil(math.log2(ranks))
        sends = require(entry, "initiator_sends_per_phase",
                        f"{where} ({ranks} ranks)")
        for phase, count in sends.items():
            if count > bound:
                fail(
                    f"{path.name}: {ranks} ranks, phase '{phase}': initiator "
                    f"sent {count}/phase, bound is ceil(log2 P) = {bound}"
                )
        print(
            f"  scaling ok: {ranks:4d} ranks, initiator sends "
            f"{max(sends.values()):.1f}/phase <= {bound}"
        )


def check_protocol(path: Path) -> None:
    data = load_json(path)
    for entry in data.get("facade_overhead_pct", []):
        where = f"{path.name} facade_overhead_pct"
        pct = require(entry, "overhead_pct", where)
        payload = require(entry, "payload_bytes", where)
        if pct > FACADE_OVERHEAD_LIMIT_PCT:
            fail(
                f"{path.name}: facade overhead {pct:+.2f}% at {payload} B "
                f"payload exceeds {FACADE_OVERHEAD_LIMIT_PCT}%"
            )
        print(f"  facade ok: {payload:6d} B payload, {pct:+.2f}% overhead")


def check_stall_lane(path: Path, sweep: list, laned_by_ranks: dict,
                     mode: str, limit: float) -> None:
    """Gate one sweep lane's commit stall against the unreplicated laned
    stall at the same rank count."""
    entries = [r for r in sweep if r.get("mode") == mode]
    if not entries:
        fail(f"{path.name}: no {mode} sweep results")
    for entry in entries:
        where = f"{path.name} {mode} lane"
        ranks = require(entry, "ranks", where)
        peer = laned_by_ranks.get(ranks)
        if peer is None:
            fail(
                f"{path.name}: {mode} result at {ranks} ranks has no "
                f"per-rank-lanes baseline at the same rank count"
            )
        baseline = require(peer, "commit_stall_seconds_per_epoch",
                           f"{path.name} per-rank-lanes lane")
        stall = require(entry, "commit_stall_seconds_per_epoch", where)
        if baseline > 0:
            ratio = stall / baseline
        else:
            ratio = require(entry, "stall_vs_laned", where)
        if ratio > limit:
            fail(
                f"{path.name}: {mode} commit stall at {ranks} ranks is "
                f"{ratio:.2f}x the unreplicated laned stall, limit {limit}x"
            )
        print(
            f"  {mode} ok: {ranks:4d} ranks commit stall {ratio:.2f}x "
            f"unreplicated laned (limit {limit}x)"
        )


def check_checkpoint(path: Path) -> None:
    data = load_json(path)
    sweep = data.get("rank_sweep", {}).get("results", [])
    laned = [r for r in sweep if r.get("mode") == "per-rank-lanes"]
    if not laned:
        fail(f"{path.name}: no per-rank-lanes sweep results")
    where = f"{path.name} per-rank-lanes lane"
    worst = max(laned, key=lambda r: require(r, "ranks", where))
    ratio = require(worst, "stall_vs_one_rank", where)
    if ratio > COMMIT_STALL_LIMIT_X:
        fail(
            f"{path.name}: commit stall at {worst['ranks']} ranks is "
            f"{ratio:.2f}x the 1-rank stall, limit {COMMIT_STALL_LIMIT_X}x"
        )
    print(
        f"  checkpoint ok: {worst['ranks']} ranks commit stall "
        f"{ratio:.2f}x 1-rank (limit {COMMIT_STALL_LIMIT_X}x)"
    )
    laned_by_ranks = {require(r, "ranks", where): r for r in laned}
    check_stall_lane(path, sweep, laned_by_ranks, "parity-replicated",
                     COMMIT_STALL_LIMIT_X)
    check_stall_lane(path, sweep, laned_by_ranks, "cow", COW_STALL_LIMIT_X)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench.py <build-dir>")
    build = Path(sys.argv[1])

    scaling = build / "BENCH_scaling.json"
    if not scaling.is_file():
        fail(f"{scaling} missing")
    check_scaling(scaling)

    checkpoint = build / "BENCH_checkpoint.json"
    if not checkpoint.is_file():
        fail(f"{checkpoint} missing")
    check_checkpoint(checkpoint)

    protocol = build / "BENCH_protocol.json"
    if protocol.is_file():
        check_protocol(protocol)
    else:
        print(f"  note: {protocol.name} absent, facade gate skipped")

    print("bench gate: all checks passed")


if __name__ == "__main__":
    main()
