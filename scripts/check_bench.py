#!/usr/bin/env python3
"""Gate CI on the benchmark JSON the bench binaries emit.

Checks (stdlib only, no third-party deps):
  BENCH_scaling.json    -- initiator control sends per phase must stay within
                           ceil(log2 P) at every swept rank count (the tree
                           control plane's core claim; a flat fan-out would
                           be P-1).
  BENCH_protocol.json   -- c3mpi facade overhead vs the direct API must stay
                           within 5% at every payload size (negative values,
                           i.e. the facade measuring faster, always pass).
  BENCH_checkpoint.json -- with per-rank writer lanes the commit stall at
                           the largest swept rank count must stay within
                           1.5x the 1-rank stall (flat-commit claim). The
                           parity-replicated lane (erasure-coded replica
                           tier stacked under the laned store) must stay
                           within 1.5x the unreplicated laned stall at
                           every swept rank count.

Usage: check_bench.py <build-dir>
Missing files fail the gate except BENCH_protocol.json, which is optional
(the microbench lane only runs on demand in some jobs).
"""
import json
import math
import sys
from pathlib import Path

FACADE_OVERHEAD_LIMIT_PCT = 5.0
COMMIT_STALL_LIMIT_X = 1.5


def fail(msg: str) -> None:
    print(f"BENCH GATE FAIL: {msg}")
    sys.exit(1)


def check_scaling(path: Path) -> None:
    data = json.loads(path.read_text())
    sweep = data.get("rank_sweep", [])
    if not sweep:
        fail(f"{path.name}: empty rank_sweep")
    for entry in sweep:
        ranks = entry["ranks"]
        bound = math.ceil(math.log2(ranks))
        sends = entry["initiator_sends_per_phase"]
        for phase, count in sends.items():
            if count > bound:
                fail(
                    f"{path.name}: {ranks} ranks, phase '{phase}': initiator "
                    f"sent {count}/phase, bound is ceil(log2 P) = {bound}"
                )
        print(
            f"  scaling ok: {ranks:4d} ranks, initiator sends "
            f"{max(sends.values()):.1f}/phase <= {bound}"
        )


def check_protocol(path: Path) -> None:
    data = json.loads(path.read_text())
    for entry in data.get("facade_overhead_pct", []):
        pct = entry["overhead_pct"]
        payload = entry["payload_bytes"]
        if pct > FACADE_OVERHEAD_LIMIT_PCT:
            fail(
                f"{path.name}: facade overhead {pct:+.2f}% at {payload} B "
                f"payload exceeds {FACADE_OVERHEAD_LIMIT_PCT}%"
            )
        print(f"  facade ok: {payload:6d} B payload, {pct:+.2f}% overhead")


def check_checkpoint(path: Path) -> None:
    data = json.loads(path.read_text())
    sweep = data.get("rank_sweep", {}).get("results", [])
    laned = [r for r in sweep if r.get("mode") == "per-rank-lanes"]
    if not laned:
        fail(f"{path.name}: no per-rank-lanes sweep results")
    worst = max(laned, key=lambda r: r["ranks"])
    ratio = worst["stall_vs_one_rank"]
    if ratio > COMMIT_STALL_LIMIT_X:
        fail(
            f"{path.name}: commit stall at {worst['ranks']} ranks is "
            f"{ratio:.2f}x the 1-rank stall, limit {COMMIT_STALL_LIMIT_X}x"
        )
    print(
        f"  checkpoint ok: {worst['ranks']} ranks commit stall "
        f"{ratio:.2f}x 1-rank (limit {COMMIT_STALL_LIMIT_X}x)"
    )
    parity = [r for r in sweep if r.get("mode") == "parity-replicated"]
    if not parity:
        fail(f"{path.name}: no parity-replicated sweep results")
    laned_by_ranks = {r["ranks"]: r for r in laned}
    for entry in parity:
        ranks = entry["ranks"]
        peer = laned_by_ranks.get(ranks)
        if peer is None:
            fail(
                f"{path.name}: parity-replicated result at {ranks} ranks has "
                f"no per-rank-lanes baseline at the same rank count"
            )
        baseline = peer["commit_stall_seconds_per_epoch"]
        stall = entry["commit_stall_seconds_per_epoch"]
        ratio = stall / baseline if baseline > 0 else entry["stall_vs_laned"]
        if ratio > COMMIT_STALL_LIMIT_X:
            fail(
                f"{path.name}: parity commit stall at {ranks} ranks is "
                f"{ratio:.2f}x the unreplicated laned stall, limit "
                f"{COMMIT_STALL_LIMIT_X}x"
            )
        print(
            f"  parity ok: {ranks:4d} ranks commit stall {ratio:.2f}x "
            f"unreplicated laned (limit {COMMIT_STALL_LIMIT_X}x)"
        )


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_bench.py <build-dir>")
    build = Path(sys.argv[1])

    scaling = build / "BENCH_scaling.json"
    if not scaling.is_file():
        fail(f"{scaling} missing")
    check_scaling(scaling)

    checkpoint = build / "BENCH_checkpoint.json"
    if not checkpoint.is_file():
        fail(f"{checkpoint} missing")
    check_checkpoint(checkpoint)

    protocol = build / "BENCH_protocol.json"
    if protocol.is_file():
        check_protocol(protocol)
    else:
        print(f"  note: {protocol.name} absent, facade gate skipped")

    print("bench gate: all checks passed")


if __name__ == "__main__":
    main()
